"""Serving plane: subset sweeps, batched scatter, and the front end.

Three layers, each pinned against the layer below it bit for bit:

1. ``WorkloadExecutor.answer_matrix(queries, partitions=...)`` — the
   subset sweep — must match the single-query ``BatchExecutor`` subset
   gather and the scalar per-partition oracle;
2. :func:`answer_selections` — the batched pick-scatter — must replay
   ``PS3.query``'s combine walk exactly (same key insertion order, same
   float chains) for every (query, selection) pair;
3. :class:`ServingFrontEnd` — admission batching over threads — must
   return answers bit-identical to the sequential path for the same
   selections, isolate per-request failures, and stop cleanly.

Plus the concurrency hammers for the races this PR fixes: the
``for_table``/``fused_view`` check-then-set memoizations and
query-vs-append interleavings.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import PS3, _selection_groups
from repro.datasets.registry import get_dataset
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.batch_executor import BatchExecutor, fused_view
from repro.engine.executor import execute_on_partition
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import Comparison, InSet
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.serving import (
    ServingConfig,
    ServingFrontEnd,
    answer_selections,
)
from repro.engine.table import Table
from repro.engine.workload_executor import WorkloadExecutor
from repro.errors import ConfigError, ServingStoppedError
from repro.workload import QueryGenerator

SCHEMA = Schema.of(
    Column("x", ColumnKind.NUMERIC, positive=True),
    Column("y", ColumnKind.NUMERIC),
    Column("d", ColumnKind.DATE),
    Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
)


def build_table(num_rows: int, seed: int = 5) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "x": rng.exponential(10.0, num_rows) + 1.0,
            "y": rng.normal(0.0, 5.0, num_rows).round(3),
            "d": rng.integers(0, 40, num_rows),
            "cat": rng.choice(["a", "b", "c", "dd"], num_rows),
        },
    )


def _workload() -> list[Query]:
    """Queries with predicate/group-by overlap, as a serving mix has."""
    hot = Comparison("x", ">", 5.0)
    return [
        Query([sum_of(col("x")), count_star()], hot, ("cat",)),
        Query([avg_of(col("y"))], hot, ("cat",)),
        Query([count_star()], InSet("cat", {"a", "c"}), ("d",)),
        Query([sum_of(col("x") + col("y"))], None, ()),
        Query([sum_of(col("x")), count_star()], hot, ("cat",)),  # dup of [0]
    ]


@pytest.fixture(scope="module")
def ptable():
    return partition_evenly(build_table(3000, seed=8), 12)


def _assert_bitwise(actual, expected, context=""):
    assert len(actual) == len(expected), context
    for i, (a, e) in enumerate(zip(actual, expected)):
        assert list(a.keys()) == list(e.keys()), (context, i)
        for key in e:
            assert a[key].tobytes() == e[key].tobytes(), (context, i, key)


class TestSubsetSweepParity:
    """`answer_matrix(queries, partitions=...)` vs the existing paths."""

    PARTITIONS = [7, 2, 2, 0, 11, 5]  # unordered, with a duplicate

    def test_matches_batch_executor_subset(self, ptable):
        queries = _workload()
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix(
            queries, partitions=self.PARTITIONS
        )
        batch = BatchExecutor.for_table(ptable)
        for qi, query in enumerate(queries):
            expected = batch.partition_answers(
                query, partitions=self.PARTITIONS
            )
            _assert_bitwise(
                matrix.answers(qi), expected, f"query[{qi}] {query.label()}"
            )

    def test_matches_scalar_oracle(self, ptable):
        queries = _workload()
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix(
            queries, partitions=self.PARTITIONS
        )
        for qi, query in enumerate(queries):
            expected = [
                execute_on_partition(ptable[p], query)
                for p in self.PARTITIONS
            ]
            _assert_bitwise(
                matrix.answers(qi), expected, f"query[{qi}] {query.label()}"
            )

    def test_duplicate_queries_still_alias(self, ptable):
        executor = WorkloadExecutor.for_table(ptable)
        queries = _workload()
        matrix = executor.answer_matrix(queries, partitions=[1, 4])
        assert matrix.block(0) is matrix.block(4)

    def test_persistent_executor_not_polluted(self, ptable):
        """The subset sweep runs on an ephemeral executor: the cached
        full-table executor keeps its identity and its full answers."""
        executor = WorkloadExecutor.for_table(ptable)
        query = _workload()[0]
        before = executor.answer_matrix([query]).answers(0)
        executor.answer_matrix(_workload(), partitions=[3, 1])
        assert WorkloadExecutor.for_table(ptable) is executor
        after = executor.answer_matrix([query]).answers(0)
        assert len(after) == ptable.num_partitions
        _assert_bitwise(after, before, "full-table answers changed")


class TestAnswerSelections:
    """The batched scatter replays PS3.query's combine walk exactly."""

    def _selections(self, ptable):
        from repro.engine.combiner import WeightedChoice

        rng = np.random.default_rng(17)
        pairs = []
        for query in _workload():
            k = int(rng.integers(2, 6))
            parts = rng.choice(ptable.num_partitions, size=k, replace=False)
            pairs.append(
                (
                    query,
                    [
                        WeightedChoice(int(p), float(w))
                        for p, w in zip(
                            parts, rng.uniform(0.5, 3.0, size=k).round(3)
                        )
                    ],
                )
            )
        return pairs

    def test_bit_identical_to_sequential_walk(self, ptable):
        pairs = self._selections(ptable)
        finals = answer_selections(ptable, pairs)
        for (query, selection), batched in zip(pairs, finals):
            sequential = _selection_groups(ptable, query, selection, True)
            assert list(batched.keys()) == list(sequential.keys())
            for key in sequential:
                assert batched[key].tobytes() == sequential[key].tobytes(), (
                    query.label(),
                    key,
                )

    def test_empty_selection_yields_empty_answer(self, ptable):
        query = _workload()[3]
        pairs = [(query, []), self._selections(ptable)[0]]
        finals = answer_selections(ptable, pairs)
        assert finals[0] == {}
        assert finals[1]  # the non-empty pair is unaffected


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.max_batch_size >= 1
        # The resilience defaults: bounded queue, plain reject, no
        # deadline, restart headroom, transient-sweep retries.
        assert config.max_queue_depth is not None
        assert config.shed_policy == "reject"
        assert config.default_deadline_seconds is None
        assert config.max_worker_restarts >= 1
        assert config.sweep_retries >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_hold_seconds": -0.1},
            {"max_queue_depth": 0},
            {"shed_policy": "drop"},
            {"default_deadline_seconds": 0.0},
            {"default_deadline_seconds": -1.0},
            {"min_degraded_fraction": 0.0},
            {"min_degraded_fraction": 1.5},
            {"max_worker_restarts": -1},
            {"sweep_retries": -1},
            {"retry_backoff_seconds": -0.01},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            ServingConfig(**kwargs)


@pytest.fixture(scope="module")
def served_system():
    """A small fitted system for front-end tests (module-scoped)."""
    spec = get_dataset("kdd")
    ptable = spec.build(3000, 12, seed=4)
    workload = spec.workload()
    train, test = QueryGenerator(workload, ptable.table, seed=6).train_test_split(
        10, 4
    )
    return PS3(ptable, workload).fit(train), test


def _assert_answer_matches_sequential(system, answer):
    """Recompute the answer from its own selection via the sequential
    plane; batched serving must match it bit for bit."""
    sequential = _selection_groups(
        system.ptable, answer.query, answer.selection.selection, True
    )
    assert list(answer.groups.keys()) == list(sequential.keys())
    for key in sequential:
        assert answer.groups[key].tobytes() == sequential[key].tobytes()


class TestQueryMany:
    def test_bit_identical_to_sequential_for_same_selections(
        self, served_system
    ):
        system, test = served_system
        queries = [test[0], test[1], test[0], test[2], test[3]]
        answers = system.query_many(queries, budget_fraction=0.4)
        assert [a.query for a in answers] == queries
        for answer in answers:
            assert len(answer.selection.selection) <= answer.budget
            _assert_answer_matches_sequential(system, answer)

    def test_budget_validation(self, served_system):
        system, test = served_system
        with pytest.raises(ConfigError):
            system.query_many([test[0]])
        with pytest.raises(ConfigError):
            system.query_many(
                [test[0]], budget_partitions=2, budget_fraction=0.5
            )

    def test_empty_batch(self, served_system):
        system, __ = served_system
        assert system.query_many([], budget_partitions=2) == []


class TestServingFrontEnd:
    def test_batched_answers_bit_identical(self, served_system):
        system, test = served_system
        config = ServingConfig(max_batch_size=8, max_hold_seconds=0.2)
        with system.serve(config) as front:
            futures = [
                front.submit(test[i % len(test)], budget_fraction=0.4)
                for i in range(16)
            ]
            answers = [f.result(timeout=30) for f in futures]
        for answer in answers:
            _assert_answer_matches_sequential(system, answer)
        assert front.stats.queries == 16
        # The 0.2s hold with instant submits guarantees real batches.
        assert front.stats.largest_batch >= 2
        assert front.stats.batched_queries >= 2
        assert front.stats.mean_batch_size > 1.0

    def test_blocking_query_helper(self, served_system):
        system, test = served_system
        with system.serve() as front:
            answer = front.query(test[0], budget_partitions=3)
        _assert_answer_matches_sequential(system, answer)
        assert len(answer.selection.selection) <= 3

    def test_async_submit(self, served_system):
        import asyncio

        system, test = served_system

        async def go(front):
            return await asyncio.gather(
                front.submit_async(test[0], budget_fraction=0.3),
                front.submit_async(test[1], budget_fraction=0.3),
            )

        with system.serve() as front:
            answers = asyncio.run(go(front))
        for answer in answers:
            _assert_answer_matches_sequential(system, answer)

    def test_pick_dedup_shares_selection_within_batch(self, served_system):
        system, test = served_system
        config = ServingConfig(max_batch_size=8, max_hold_seconds=0.3)
        with system.serve(config) as front:
            futures = [
                front.submit(test[0], budget_partitions=3) for __ in range(6)
            ]
            answers = [f.result(timeout=30) for f in futures]
        # The 0.3s hold admits all 6 into one batch; same query + same
        # budget -> one pick shared by all, and the answers agree bitwise.
        assert front.stats.pick_dedup_hits >= 5
        first = answers[0]
        for answer in answers[1:]:
            assert answer.selection.selection == first.selection.selection
            assert list(answer.groups.keys()) == list(first.groups.keys())
            for key in first.groups:
                assert answer.groups[key].tobytes() == first.groups[key].tobytes()
        for answer in answers:
            _assert_answer_matches_sequential(system, answer)

    def test_pick_dedup_disabled_picks_per_request(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=8, max_hold_seconds=0.3, dedup_picks=False
        )
        with system.serve(config) as front:
            futures = [
                front.submit(test[0], budget_partitions=3) for __ in range(6)
            ]
            answers = [f.result(timeout=30) for f in futures]
        assert front.stats.pick_dedup_hits == 0
        for answer in answers:
            _assert_answer_matches_sequential(system, answer)

    def test_per_request_failure_isolated(self, served_system):
        system, test = served_system
        bad = Query([count_star()], Comparison("no_such_column", ">", 1.0))
        with system.serve(
            ServingConfig(max_batch_size=4, max_hold_seconds=0.2)
        ) as front:
            good_future = front.submit(test[0], budget_partitions=3)
            bad_future = front.submit(bad, budget_partitions=3)
            answer = good_future.result(timeout=30)
            with pytest.raises(Exception):
                bad_future.result(timeout=30)
        _assert_answer_matches_sequential(system, answer)
        assert front.stats.failures == 1

    def test_submit_validates_budget_shape_immediately(self, served_system):
        system, test = served_system
        with system.serve() as front:
            with pytest.raises(ConfigError):
                front.submit(test[0])
            with pytest.raises(ConfigError):
                front.submit(test[0], budget_partitions=2, budget_fraction=0.5)
            with pytest.raises(ConfigError):
                front.submit(test[0], budget_fraction=1.5)

    def test_stopped_front_end_rejects_submissions(self, served_system):
        system, test = served_system
        front = system.serve()
        front.stop()
        with pytest.raises(ServingStoppedError):
            front.submit(test[0], budget_partitions=2)

    def test_double_start_rejected(self, served_system):
        system, __ = served_system
        front = system.serve()
        try:
            with pytest.raises(ConfigError):
                front.start()
        finally:
            front.stop()

    def test_stop_idempotent_and_context_reentrant(self, served_system):
        system, test = served_system
        front = ServingFrontEnd(system)
        with front:
            front.query(test[0], budget_partitions=2)
        front.stop()  # second stop is a no-op
        with front:  # restartable after stop
            front.query(test[1], budget_partitions=2)

    def test_requires_fitted_system(self):
        spec = get_dataset("kdd")
        ptable = spec.build(1000, 4, seed=5)
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            PS3(ptable, spec.workload()).serve()

    def test_undegraded_answers_report_full_budget(self, served_system):
        """Outside the degrade path, the resolved budget is what ran —
        and the answer says so (the degradation contract's null case)."""
        system, test = served_system
        with system.serve() as front:
            served = front.query(test[0], budget_partitions=3)
        direct = system.query(test[0], budget_partitions=3)
        for answer in (served, direct):
            assert answer.degraded is False
            assert answer.effective_budget == answer.budget == 3

    def test_health_snapshot_lifecycle(self, served_system):
        system, test = served_system
        front = system.serve()
        try:
            health = front.health()
            assert health.running and health.worker_alive and health.healthy
            assert health.queue_depth == 0
            assert health.worker_restarts == 0
            assert health.restarts_remaining == (
                front.config.max_worker_restarts
            )
            assert health.last_error is None
            front.query(test[0], budget_partitions=2)
        finally:
            front.stop()
        health = front.health()
        assert not health.running
        assert not health.healthy

    def test_queue_gauge_returns_to_zero(self, served_system):
        system, test = served_system
        config = ServingConfig(max_batch_size=8, max_hold_seconds=0.2)
        with system.serve(config) as front:
            futures = [
                front.submit(test[i % len(test)], budget_fraction=0.4)
                for i in range(6)
            ]
            for future in futures:
                future.result(timeout=30)
        assert front.stats.queue_depth == 0
        assert front.stats.queue_peak >= 1
        assert front.stats.shed == 0
        assert front.stats.deadline_misses == 0


class TestCacheMemoizationRaces:
    """Regression: `for_table`/`fused_view` check-then-set on the table
    object was unlocked — two threads could each build an executor (and
    its fused view) and race the attribute write."""

    def _hammer(self, build, check_identity=True):
        results: list[object] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def run() -> None:
            barrier.wait()
            try:
                results.append(build())
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=run) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        if check_identity:
            assert all(r is results[0] for r in results)

    def test_batch_executor_memoized_once(self):
        ptable = partition_evenly(build_table(600, seed=21), 6)
        self._hammer(lambda: BatchExecutor.for_table(ptable))

    def test_workload_executor_memoized_once(self):
        ptable = partition_evenly(build_table(600, seed=22), 6)
        self._hammer(lambda: WorkloadExecutor.for_table(ptable))

    def test_fused_view_memoized_once(self):
        ptable = partition_evenly(build_table(600, seed=23), 6)
        self._hammer(lambda: fused_view(ptable))


class TestConcurrentAppendVsQueries:
    """In-flight queries racing appends see exactly one table
    generation: every answer is internally consistent (selection within
    its generation's partition count) and recomputes bit-identically —
    old partitions are immutable across appends, so the final table is
    a valid oracle for every generation's selections."""

    @pytest.mark.parametrize("use_serving", [False, True])
    def test_hammer(self, use_serving):
        spec = get_dataset("kdd")
        ptable = spec.build(2400, 8, seed=13)
        workload = spec.workload()
        train, test = QueryGenerator(
            workload, ptable.table, seed=3
        ).train_test_split(8, 3)
        system = PS3(ptable, workload).fit(train)
        generations = {system.ptable.num_partitions}

        answers: list = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def appender() -> None:
            try:
                for seed in range(4):
                    rows = dict(spec.generate(200, 500 + seed).columns)
                    generations.add(system.append(rows) + 1)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                stop.set()

        front = system.serve() if use_serving else None
        try:

            def client(seed: int) -> None:
                try:
                    i = 0
                    while not stop.is_set() or i < 4:
                        query = test[(seed + i) % len(test)]
                        if front is not None:
                            answer = front.query(query, budget_fraction=0.5)
                        else:
                            answer = system.query(query, budget_fraction=0.5)
                        answers.append(answer)
                        i += 1
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(s,)) for s in range(4)
            ]
            appends = threading.Thread(target=appender)
            for t in threads:
                t.start()
            appends.start()
            appends.join()
            for t in threads:
                t.join()
        finally:
            if front is not None:
                front.stop()

        assert errors == []
        assert len(generations) == 5  # all four appends landed
        assert answers
        for answer in answers:
            # One consistent generation, never a torn view.
            assert answer.num_partitions in generations
            assert all(
                c.partition < answer.num_partitions
                for c in answer.selection.selection
            )
            _assert_answer_matches_sequential(system, answer)
