"""Serving-path fault injection: enumerate every fault point.

The storage plane proves its crash-safety by killing every filesystem
op once (`tests/storage/test_killpoints.py`); this suite is the same
discipline on the serving plane. For every injectable fault point —
poisoned pick, worker crash at pick, transient sweep EIO, exhausted
sweep retries, crash mid-scatter (every index), crash at batch start,
a permanently crashing worker, a client-cancelled future mid-batch —
it asserts the three isolation invariants of the front end:

1. a poisoned request fails only its *own* future;
2. a worker crash never strands batch-mates — every future completes
   (answered or failed), none hangs;
3. after recovery (restart or retry), answers are bit-identical to the
   sequential ``PS3.query`` combine walk for the same selections.

The fast subset runs as a named tier-1 CI step; the exhaustive
batch-size × fault-index enumeration rides the ``slow`` job.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import pytest

from repro.api import PS3, _selection_groups
from repro.datasets.registry import get_dataset
from repro.engine.faults import (
    FaultyPicker,
    ServingFaults,
    SimulatedWorkerCrash,
)
from repro.engine.serving import ServingConfig, ServingFrontEnd
from repro.errors import (
    ExecutionError,
    ServingError,
    ServingStoppedError,
    ServingTimeoutError,
)
from repro.workload import QueryGenerator


@pytest.fixture(scope="module")
def served_system():
    """A small fitted system shared by the fault sweeps (module-scoped)."""
    spec = get_dataset("kdd")
    ptable = spec.build(2400, 10, seed=11)
    workload = spec.workload()
    train, test = QueryGenerator(
        workload, ptable.table, seed=9
    ).train_test_split(10, 4)
    return PS3(ptable, workload).fit(train), test


def _assert_matches_sequential(system, answer):
    """Recompute the answer from its own selection via the sequential
    plane; the served answer must match it bit for bit."""
    sequential = _selection_groups(
        system.ptable, answer.query, answer.selection.selection, True
    )
    assert list(answer.groups.keys()) == list(sequential.keys())
    for key in sequential:
        assert answer.groups[key].tobytes() == sequential[key].tobytes()


@contextmanager
def poisoned_picker(system, **faults):
    """Temporarily wrap the fitted picker in a FaultyPicker."""
    original = system._picker
    system._picker = FaultyPicker(original, **faults)
    try:
        yield system._picker
    finally:
        system._picker = original


#: A batch-forming config: long hold, so a burst of submits lands in
#: one deterministic batch that closes when it reaches max_batch_size.
def _batch_config(size, **kw):
    return ServingConfig(max_batch_size=size, max_hold_seconds=0.5, **kw)


class TestPoisonedPick:
    """Fault point: picker.select raises for one request."""

    @pytest.mark.parametrize("poison", [0, 1, 3])
    def test_fails_only_its_own_future(self, served_system, poison):
        system, test = served_system
        config = _batch_config(4, dedup_picks=False)
        with poisoned_picker(system, fail_at_pick=poison):
            with ServingFrontEnd(system, config) as front:
                futures = [
                    front.submit(test[i], budget_partitions=3)
                    for i in range(4)
                ]
                for i, future in enumerate(futures):
                    if i == poison:
                        with pytest.raises(ExecutionError):
                            future.result(timeout=30)
                    else:
                        _assert_matches_sequential(
                            system, future.result(timeout=30)
                        )
        assert front.stats.failures == 1
        assert front.stats.worker_restarts == 0  # a request bug, not a crash

    @pytest.mark.slow
    def test_exhaustive_over_every_pick_index(self, served_system):
        for size in (1, 2, 3, 4):
            for poison in range(size):
                system, test = served_system
                config = _batch_config(size, dedup_picks=False)
                with poisoned_picker(system, fail_at_pick=poison):
                    with ServingFrontEnd(system, config) as front:
                        futures = [
                            front.submit(test[i % len(test)], budget_partitions=3)
                            for i in range(size)
                        ]
                        for i, future in enumerate(futures):
                            if i == poison:
                                with pytest.raises(ExecutionError):
                                    future.result(timeout=30)
                            else:
                                _assert_matches_sequential(
                                    system, future.result(timeout=30)
                                )
                assert front.stats.failures == 1, (size, poison)

    def test_crash_at_pick_fails_batch_restarts_worker(self, served_system):
        system, test = served_system
        config = _batch_config(3, dedup_picks=False)
        with poisoned_picker(system, crash_at_pick=1):
            with ServingFrontEnd(system, config) as front:
                futures = [
                    front.submit(test[i], budget_partitions=3)
                    for i in range(3)
                ]
                # The crash escapes the per-request guard (it is a
                # worker death, not a request bug): every in-flight
                # future fails, none strands.
                for future in futures:
                    with pytest.raises(ServingError):
                        future.result(timeout=30)
                # ... and the restarted worker serves new requests,
                # bit-identical (crash_at_pick=1 already consumed).
                answer = front.query(test[0], budget_partitions=3)
                _assert_matches_sequential(system, answer)
        assert front.stats.worker_restarts == 1
        assert front.health().last_error is not None


class TestSweepRetry:
    """Fault point: the batch sweep raises a transient error."""

    def test_transient_eio_retried_bit_identical(self, served_system):
        system, test = served_system
        faults = ServingFaults(fail_sweeps=2)
        config = _batch_config(
            3, sweep_retries=2, retry_backoff_seconds=0.0
        )
        with ServingFrontEnd(system, config, faults=faults) as front:
            futures = [
                front.submit(test[i], budget_partitions=3) for i in range(3)
            ]
            for future in futures:
                _assert_matches_sequential(system, future.result(timeout=30))
        assert front.stats.sweep_retries == 2
        assert front.stats.failures == 0
        assert front.stats.worker_restarts == 0
        assert faults.sweeps == 3  # two injected failures + the success

    def test_injected_execution_error_retried(self, served_system):
        system, test = served_system
        faults = ServingFaults(
            fail_sweeps=1, sweep_error=lambda: ExecutionError("injected")
        )
        config = _batch_config(2, sweep_retries=1, retry_backoff_seconds=0.0)
        with ServingFrontEnd(system, config, faults=faults) as front:
            answer = front.query(test[0], budget_partitions=3)
        _assert_matches_sequential(system, answer)
        assert front.stats.sweep_retries == 1

    def test_exhausted_retries_fail_batch_not_worker(self, served_system):
        system, test = served_system
        faults = ServingFaults(fail_sweeps=3)
        config = _batch_config(2, sweep_retries=2, retry_backoff_seconds=0.0)
        with ServingFrontEnd(system, config, faults=faults) as front:
            futures = [
                front.submit(test[i], budget_partitions=3) for i in range(2)
            ]
            for future in futures:
                with pytest.raises(OSError):
                    future.result(timeout=30)
            # The worker survived (batch failed, not crashed) and the
            # next batch succeeds once the fault budget is spent.
            answer = front.query(test[0], budget_partitions=3)
            _assert_matches_sequential(system, answer)
        assert front.stats.worker_restarts == 0
        assert front.stats.failures == 2

    def test_non_transient_oserror_fails_immediately(self, served_system):
        import errno

        system, test = served_system
        faults = ServingFaults(
            fail_sweeps=5,
            sweep_error=lambda: OSError(errno.ENOENT, "not transient"),
        )
        config = _batch_config(1, sweep_retries=3, retry_backoff_seconds=0.0)
        with ServingFrontEnd(system, config, faults=faults) as front:
            future = front.submit(test[0], budget_partitions=3)
            with pytest.raises(OSError):
                future.result(timeout=30)
        assert front.stats.sweep_retries == 0  # no retry burned on ENOENT
        assert faults.sweeps == 1


class TestCrashMidScatter:
    """Fault point: the worker dies between two future completions."""

    def _run_point(self, served_system, size, crash_at):
        system, test = served_system
        faults = ServingFaults(crash_at_scatter=crash_at)
        config = _batch_config(size, dedup_picks=False)
        with ServingFrontEnd(system, config, faults=faults) as front:
            futures = [
                front.submit(test[i % len(test)], budget_partitions=3)
                for i in range(size)
            ]
            for i, future in enumerate(futures):
                if i < crash_at:
                    # Completed before the crash: bit-identical answer.
                    _assert_matches_sequential(
                        system, future.result(timeout=30)
                    )
                else:
                    # Batch-mates at/after the crash point: failed by
                    # the supervisor, never stranded.
                    with pytest.raises(ServingError):
                        future.result(timeout=30)
            # Recovery: the restarted worker answers bit-identically.
            _assert_matches_sequential(
                system, front.query(test[0], budget_partitions=3)
            )
        assert front.stats.worker_restarts == 1, (size, crash_at)
        assert all(f.done() for f in futures), (size, crash_at)

    @pytest.mark.parametrize("crash_at", [0, 2, 3])
    def test_fast_points(self, served_system, crash_at):
        self._run_point(served_system, 4, crash_at)

    @pytest.mark.slow
    def test_exhaustive_every_scatter_index(self, served_system):
        for size in (1, 2, 3, 5):
            for crash_at in range(size):
                self._run_point(served_system, size, crash_at)


class TestWorkerDeath:
    """Fault point: the worker dies at batch start (and keeps dying)."""

    class _AlwaysCrash(ServingFaults):
        def on_batch(self) -> None:
            self.batches += 1
            raise SimulatedWorkerCrash("injected: worker dies every batch")

    def test_single_crash_restarts_and_recovers(self, served_system):
        system, test = served_system
        faults = ServingFaults(crash_at_batch=0)
        config = _batch_config(2)
        with ServingFrontEnd(system, config, faults=faults) as front:
            futures = [
                front.submit(test[i], budget_partitions=3) for i in range(2)
            ]
            for future in futures:
                with pytest.raises(ServingError):
                    future.result(timeout=30)
            health = front.health()
            assert health.healthy
            assert health.worker_restarts == 1
            assert "SimulatedWorkerCrash" in health.last_error
            _assert_matches_sequential(
                system, front.query(test[0], budget_partitions=3)
            )

    def test_restart_cap_fails_permanently(self, served_system):
        system, test = served_system
        config = _batch_config(2, max_worker_restarts=1)
        front = ServingFrontEnd(
            system, config, faults=self._AlwaysCrash()
        ).start()
        try:
            # Crash 1: restarted. Crash 2: past the cap, permanent.
            for __ in range(2):
                future = front.submit(test[0], budget_partitions=3)
                with pytest.raises(ServingError):
                    future.result(timeout=30)
            deadline = time.monotonic() + 10
            while front.health().running and time.monotonic() < deadline:
                time.sleep(0.005)
            health = front.health()
            assert not health.running
            assert not health.healthy
            assert health.restarts_remaining == 0
            assert front.stats.worker_restarts == 1
            with pytest.raises(ServingStoppedError):
                front.submit(test[0], budget_partitions=3)
        finally:
            front.stop()

    def test_blocking_query_never_hangs_on_worker_death(self, served_system):
        """Regression: `query` used to block forever on a dead worker."""
        system, test = served_system
        config = _batch_config(1, max_worker_restarts=0)
        front = ServingFrontEnd(
            system, config, faults=self._AlwaysCrash()
        ).start()
        try:
            started = time.monotonic()
            with pytest.raises(ServingError):
                front.query(test[0], budget_partitions=3)
            assert time.monotonic() - started < 10
        finally:
            front.stop()

    def test_blocking_query_deadline_on_wedged_worker(self, served_system):
        """A wedged (not dead) worker: the wait honors the deadline."""
        system, test = served_system
        faults = ServingFaults(slow_batch_seconds=0.5)
        with ServingFrontEnd(
            system, _batch_config(1), faults=faults
        ) as front:
            started = time.monotonic()
            with pytest.raises(ServingTimeoutError):
                front.query(test[0], budget_partitions=3, deadline_seconds=0.05)
            assert time.monotonic() - started < 0.4
        assert front.stats.deadline_misses >= 1

    def test_blocking_query_default_config_deadline(self, served_system):
        """The config default deadline applies when none is passed."""
        system, test = served_system
        faults = ServingFaults(slow_batch_seconds=0.5)
        config = _batch_config(1, default_deadline_seconds=0.05)
        with ServingFrontEnd(system, config, faults=faults) as front:
            with pytest.raises(ServingTimeoutError):
                front.query(test[0], budget_partitions=3)


class TestDeadlines:
    def test_expired_at_pick_time_fails_fast(self, served_system):
        system, test = served_system
        faults = ServingFaults(slow_batch_seconds=0.1)
        with ServingFrontEnd(
            system, _batch_config(1), faults=faults
        ) as front:
            future = front.submit(
                test[0], budget_partitions=3, deadline_seconds=0.03
            )
            with pytest.raises(ServingTimeoutError):
                future.result(timeout=30)
        assert front.stats.deadline_misses >= 1

    def test_submit_rejects_already_expired_deadline(self, served_system):
        system, test = served_system
        with ServingFrontEnd(system, _batch_config(2)) as front:
            with pytest.raises(ServingTimeoutError):
                front.submit(test[0], budget_partitions=3, deadline_seconds=0.0)
            with pytest.raises(ServingTimeoutError):
                front.submit(
                    test[0], budget_partitions=3, deadline_seconds=-1.0
                )

    def test_admission_stops_padding_near_deadline(self, served_system):
        """A lone deadlined request is not held for the full window.

        With a 10s hold and a 0.5s deadline, the old admission loop
        would hold the batch open well past the deadline; the fix
        spends at most half the remaining deadline budget padding, so
        the answer lands with time to spare.
        """
        system, test = served_system
        config = ServingConfig(max_batch_size=32, max_hold_seconds=10.0)
        with ServingFrontEnd(system, config) as front:
            started = time.monotonic()
            answer = front.query(
                test[0], budget_partitions=3, deadline_seconds=0.5
            )
            elapsed = time.monotonic() - started
        _assert_matches_sequential(system, answer)
        assert elapsed < 2.0  # nowhere near the 10s hold
        assert front.stats.deadline_misses == 0

    def test_generous_deadline_answers_normally(self, served_system):
        system, test = served_system
        with ServingFrontEnd(system, _batch_config(2)) as front:
            answer = front.query(
                test[0], budget_partitions=3, deadline_seconds=30.0
            )
        _assert_matches_sequential(system, answer)
        assert answer.degraded is False
        assert answer.effective_budget == answer.budget


class TestCancelledFutures:
    """Regression: a client-cancelled future used to make `_process`'s
    set_result raise InvalidStateError mid-scatter, killing the worker
    and stranding every batch-mate."""

    def test_cancel_mid_batch_skips_without_killing_worker(
        self, served_system
    ):
        system, test = served_system
        config = _batch_config(4, dedup_picks=False)
        with ServingFrontEnd(system, config) as front:
            f0 = front.submit(test[0], budget_partitions=3)
            f1 = front.submit(test[1], budget_partitions=3)
            f2 = front.submit(test[2], budget_partitions=3)
            assert f1.cancel()  # still pending: the batch is holding
            f3 = front.submit(test[3], budget_partitions=3)  # closes batch
            for future in (f0, f2, f3):
                _assert_matches_sequential(system, future.result(timeout=30))
            assert f1.cancelled()
        assert front.stats.cancelled_skips >= 1
        assert front.stats.worker_restarts == 0
        assert front.stats.failures == 0

    def test_asyncio_cancellation_mid_batch(self, served_system):
        import asyncio

        system, test = served_system
        config = _batch_config(3, dedup_picks=False)

        async def go(front):
            victim = asyncio.ensure_future(
                front.submit_async(test[0], budget_partitions=3)
            )
            survivor = asyncio.ensure_future(
                front.submit_async(test[1], budget_partitions=3)
            )
            await asyncio.sleep(0)  # let both submits land
            victim.cancel()
            closer = asyncio.ensure_future(
                front.submit_async(test[2], budget_partitions=3)
            )
            answers = await asyncio.gather(survivor, closer)
            with pytest.raises(asyncio.CancelledError):
                await victim
            return answers

        with ServingFrontEnd(system, config) as front:
            answers = asyncio.run(go(front))
        for answer in answers:
            _assert_matches_sequential(system, answer)
        assert front.stats.worker_restarts == 0
