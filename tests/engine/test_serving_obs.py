"""Serving-path observability: spans/stats consistency, PS3.metrics().

The front end's ``stats`` object became a view over its private
:class:`~repro.obs.MetricsRegistry`; these tests pin the contract that
migration must not break — the legacy integer attributes
(``front.stats.queries`` and friends) and the registry snapshot are two
reads of the *same* counts — and that the span taxonomy
(``serving.pick`` / ``serving.sweep`` / ``serving.scatter`` /
``serving.admission_wait_seconds``) fires consistently with those
counts. ``PS3.metrics()`` must merge all three planes.
"""

from __future__ import annotations

import json

import pytest

from repro.api import PS3
from repro.datasets.registry import get_dataset
from repro.engine.serving import ServingConfig, ServingStats
from repro.obs import MetricsRegistry
from repro.workload import QueryGenerator


@pytest.fixture(scope="module")
def served_system():
    spec = get_dataset("kdd")
    ptable = spec.build(3000, 12, seed=4)
    workload = spec.workload()
    train, test = QueryGenerator(
        workload, ptable.table, seed=6
    ).train_test_split(10, 4)
    return PS3(ptable, workload).fit(train), test


class TestStatsRegistryConsistency:
    def test_legacy_views_equal_registry_counters(self, served_system):
        system, test = served_system
        front = system.serve(ServingConfig(max_hold_seconds=0.0))
        try:
            for query in test:
                front.query(query, budget_fraction=0.25)
        finally:
            front.stop()
        snap = front.registry.snapshot()
        stats = front.stats
        assert stats.queries == len(test)
        for name in ServingStats._COUNTER_NAMES:
            assert snap["counters"][f"serving.{name}"] == getattr(
                stats, name
            ), name
        for name in ServingStats._GAUGE_NAMES:
            assert snap["gauges"][f"serving.{name}"] == getattr(
                stats, name
            ), name

    def test_spans_fire_consistently_with_batch_counts(self, served_system):
        system, test = served_system
        front = system.serve(ServingConfig(max_hold_seconds=0.0))
        try:
            for query in test:
                front.query(query, budget_fraction=0.25)
        finally:
            front.stop()
        snap = front.registry.snapshot()
        batches = front.stats.batches
        assert batches >= 1
        # One pick span per processed batch; one sweep and one scatter
        # span per batch that had at least one picked request (all of
        # them here — no failures were injected).
        assert snap["counters"]["serving.pick.calls"] == batches
        assert snap["counters"]["serving.sweep.calls"] == batches
        assert snap["counters"]["serving.scatter.calls"] == batches
        for stage in ("serving.pick", "serving.sweep", "serving.scatter"):
            hist = snap["histograms"][f"{stage}.wall_seconds"]
            assert hist["count"] == batches
            assert hist["sum"] >= 0.0
            assert hist["p50"] is not None
        # Every dequeued request recorded its admission wait.
        wait = snap["histograms"]["serving.admission_wait_seconds"]
        assert wait["count"] == front.stats.queries
        assert wait["p50"] <= wait["p95"] <= wait["p99"]

    def test_stats_survive_stop_and_stay_readable(self, served_system):
        system, test = served_system
        front = system.serve(ServingConfig(max_hold_seconds=0.0))
        front.query(test[0], budget_fraction=0.25)
        front.stop()
        assert front.stats.queries == 1
        assert front.stats.mean_batch_size == 1.0
        assert front.stats.queue_depth == 0

    def test_each_front_end_gets_its_own_registry(self, served_system):
        system, test = served_system
        with system.serve() as first:
            first.query(test[0], budget_fraction=0.25)
        with system.serve() as second:
            pass
        assert first.registry is not second.registry
        assert first.stats.queries == 1
        assert second.stats.queries == 0

    def test_explicit_registry_is_honored(self, served_system):
        system, test = served_system
        from repro.engine.serving import ServingFrontEnd

        mine = MetricsRegistry()
        front = ServingFrontEnd(system, registry=mine)
        with front:
            front.query(test[0], budget_fraction=0.25)
        assert front.registry is mine
        assert mine.snapshot()["counters"]["serving.queries"] == 1

    def test_mutation_helpers_update_both_views(self):
        # The real shed/degrade paths are pinned in
        # test_serving_overload.py (reading the same legacy views); here
        # pin that every helper writes one count visible both ways.
        stats = ServingStats()
        stats.count("shed")
        stats.count("failures", 3)
        stats.note_enqueue()
        stats.note_enqueue()
        stats.note_dequeue()
        stats.note_batch(4)
        stats.note_batch(1)
        assert stats.shed == 1
        assert stats.failures == 3
        assert stats.queue_depth == 1
        assert stats.queue_peak == 2
        assert stats.batches == 2
        assert stats.queries == 5
        assert stats.largest_batch == 4
        assert stats.batched_queries == 4
        assert stats.mean_batch_size == 2.5
        snap = stats.registry.snapshot()
        assert snap["counters"]["serving.shed"] == 1
        assert snap["counters"]["serving.failures"] == 3
        assert snap["gauges"]["serving.queue_depth"] == 1
        assert snap["gauges"]["serving.queue_peak"] == 2
        assert snap["gauges"]["serving.largest_batch"] == 4
        with pytest.raises(AttributeError):
            stats.nonexistent_counter


class TestPS3Metrics:
    def test_merges_serving_engine_and_storage_planes(
        self, served_system, tmp_path
    ):
        system, test = served_system
        system.attach_store(tmp_path)
        system.append(
            {
                name: values[:50]
                for name, values in system.ptable.table.columns.items()
            }
        )
        system.checkpoint()
        front = system.serve(ServingConfig(max_hold_seconds=0.0))
        try:
            front.query(test[0], budget_fraction=0.25)
        finally:
            front.stop()
        snap = system.metrics()
        # Serving plane (from the front end's private registry).
        assert snap["counters"]["serving.queries"] >= 1
        assert "serving.sweep.wall_seconds" in snap["histograms"]
        # Engine plane (process-global registry).
        assert snap["counters"]["engine.sweep.calls"] >= 1
        assert any(
            name.startswith("mask_cache.") for name in snap["counters"]
        )
        # Storage plane.
        assert snap["counters"]["storage.wal.appends"] >= 1
        assert "storage.wal.fsync_seconds" in snap["histograms"]
        assert snap["counters"]["storage.checkpoint.calls"] >= 1

    def test_snapshot_is_json_serializable(self, served_system):
        system, __ = served_system
        json.dumps(system.metrics())

    def test_metrics_without_serve_is_global_only(self, served_system):
        system, __ = served_system
        fresh = PS3.__new__(PS3)
        fresh._serving_registry = None
        snap = PS3.metrics(fresh)
        assert set(snap) == {"counters", "gauges", "histograms"}
