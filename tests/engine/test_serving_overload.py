"""Closed-loop overload hammer: offered load ≫ capacity.

Floods the front end from several submitter threads while the worker is
throttled (injected per-batch slow-op), and asserts the resilience
contract end to end:

* the admission queue stays *bounded* (`queue_peak <= max_queue_depth`)
  and sheds are accounted (`stats.shed` == client-observed rejections);
* under the ``"degrade"`` policy the controller shrinks budgets instead
  of shedding everything — degraded answers report
  ``effective_budget``/``degraded`` and respect the
  ``min_degraded_fraction`` floor, and every answer (degraded or not)
  stays bit-identical to the sequential combine walk for its own
  selection;
* a deadlined request trapped behind the backlog fails fast with
  ``ServingTimeoutError`` instead of waiting out the queue;
* after ``stop()`` under load, zero futures are stranded — every one is
  done (answered, failed, shed at submit, or failed by the drain).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import PS3, _selection_groups
from repro.datasets.registry import get_dataset
from repro.engine.faults import ServingFaults
from repro.engine.serving import ServingConfig, ServingFrontEnd
from repro.errors import (
    ServingError,
    ServingOverloadError,
    ServingTimeoutError,
)
from repro.workload import QueryGenerator


@pytest.fixture(scope="module")
def served_system():
    spec = get_dataset("kdd")
    ptable = spec.build(2000, 8, seed=23)
    workload = spec.workload()
    train, test = QueryGenerator(
        workload, ptable.table, seed=29
    ).train_test_split(10, 4)
    return PS3(ptable, workload).fit(train), test


def _assert_matches_sequential(system, answer):
    sequential = _selection_groups(
        system.ptable, answer.query, answer.selection.selection, True
    )
    assert list(answer.groups.keys()) == list(sequential.keys())
    for key in sequential:
        assert answer.groups[key].tobytes() == sequential[key].tobytes()


def _flood(front, test, *, clients, per_client, budget_fraction=0.75):
    """Open-loop flood from several threads; returns (futures, sheds)."""
    futures: list = []
    sheds = [0]
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client(seed: int) -> None:
        barrier.wait()
        for i in range(per_client):
            try:
                future = front.submit(
                    test[(seed + i) % len(test)],
                    budget_fraction=budget_fraction,
                )
            except ServingOverloadError:
                with lock:
                    sheds[0] += 1
            except BaseException as exc:  # noqa: BLE001 - collected
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    futures.append(future)

    threads = [
        threading.Thread(target=client, args=(s,)) for s in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    return futures, sheds[0]


#: Throttle the worker so the flood outpaces it by construction.
def _throttled(slow=0.005):
    return ServingFaults(slow_batch_seconds=slow)


class TestBoundedQueue:
    def test_depth_bounded_and_sheds_accounted(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=2,
            max_hold_seconds=0.0,
            max_queue_depth=6,
            shed_policy="reject",
        )
        front = ServingFrontEnd(system, config, faults=_throttled()).start()
        try:
            futures, sheds = _flood(front, test, clients=4, per_client=20)
            answers = [f.result(timeout=60) for f in futures]
        finally:
            front.stop()
        # Offered 80 ≫ capacity: the bound must have bitten.
        assert sheds > 0
        assert front.stats.shed == sheds
        assert front.stats.queue_peak <= 6
        assert len(answers) + sheds == 80
        for answer in answers:
            _assert_matches_sequential(system, answer)
            assert answer.degraded is False  # reject policy never degrades
        assert front.stats.degraded == 0

    def test_unbounded_queue_never_sheds(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=8, max_hold_seconds=0.0, max_queue_depth=None
        )
        front = ServingFrontEnd(system, config, faults=_throttled()).start()
        try:
            futures, sheds = _flood(front, test, clients=4, per_client=10)
            for future in futures:
                future.result(timeout=60)
        finally:
            front.stop()
        assert sheds == 0
        assert len(futures) == 40


class TestDegradePolicy:
    def test_budgets_shrink_under_pressure(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=2,
            max_hold_seconds=0.0,
            max_queue_depth=8,
            shed_policy="degrade",
            min_degraded_fraction=0.25,
        )
        front = ServingFrontEnd(system, config, faults=_throttled()).start()
        try:
            futures, sheds = _flood(
                front, test, clients=4, per_client=16, budget_fraction=0.75
            )
            answers = [f.result(timeout=60) for f in futures]
        finally:
            front.stop()
        assert front.stats.queue_peak <= 8
        assert front.stats.degraded > 0
        degraded = [a for a in answers if a.degraded]
        assert len(degraded) == front.stats.degraded
        for answer in answers:
            # The degradation trade is visible and floored.
            assert 1 <= answer.effective_budget <= answer.budget
            floor = max(
                1, round(answer.budget * config.min_degraded_fraction)
            )
            assert answer.effective_budget >= floor
            assert answer.degraded == (
                answer.effective_budget < answer.budget
            )
            assert len(answer.selection.selection) <= answer.effective_budget
            # Degraded or not, the answer is bit-identical to the
            # sequential combine walk for its own selection.
            _assert_matches_sequential(system, answer)

    def test_no_pressure_means_no_degradation(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_queue_depth=64,
            shed_policy="degrade",
            max_hold_seconds=0.05,
        )
        with ServingFrontEnd(system, config) as front:
            answer = front.query(test[0], budget_fraction=0.75)
        assert answer.degraded is False
        assert answer.effective_budget == answer.budget
        _assert_matches_sequential(system, answer)


class TestDeadlinesUnderLoad:
    def test_deadline_miss_fails_fast_behind_backlog(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=1, max_hold_seconds=0.0, max_queue_depth=64
        )
        front = ServingFrontEnd(
            system, config, faults=_throttled(0.02)
        ).start()
        try:
            # Trap a tightly-deadlined request in the middle of a
            # backlog: it must fail fast when the worker reaches it
            # (expired at pick time, no sweep spent on it), not wait
            # for an answer behind the whole queue.
            head = [
                front.submit(test[i % len(test)], budget_partitions=2)
                for i in range(10)
            ]
            doomed = front.submit(
                test[0], budget_partitions=2, deadline_seconds=0.05
            )
            tail = [
                front.submit(test[i % len(test)], budget_partitions=2)
                for i in range(10)
            ]
            with pytest.raises(ServingTimeoutError):
                doomed.result(timeout=60)
            # Failed ahead of the tail: the ~0.2s of queued work behind
            # it had not been served when the miss surfaced.
            assert not all(f.done() for f in tail)
            for future in head + tail:
                future.result(timeout=60)
        finally:
            front.stop()
        assert front.stats.deadline_misses >= 1


class TestStopUnderLoad:
    def test_zero_stranded_futures_after_stop(self, served_system):
        system, test = served_system
        config = ServingConfig(
            max_batch_size=2, max_hold_seconds=0.0, max_queue_depth=64
        )
        front = ServingFrontEnd(
            system, config, faults=_throttled(0.01)
        ).start()
        futures, __ = _flood(front, test, clients=4, per_client=10)
        front.stop()  # mid-flood: much of the queue is still pending
        assert all(f.done() for f in futures)
        outcomes = {"answered": 0, "stopped": 0}
        for future in futures:
            exc = future.exception(timeout=0)
            if exc is None:
                _assert_matches_sequential(system, future.result())
                outcomes["answered"] += 1
            else:
                assert isinstance(exc, ServingError)
                outcomes["stopped"] += 1
        assert sum(outcomes.values()) == len(futures)
        assert front.stats.queue_depth == 0
