"""Unit tests for the SQL front end."""

import numpy as np
import pytest

from repro.engine.aggregates import AggFunc
from repro.engine.executor import execute_on_table
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.sql import SQLParseError, parse_query


@pytest.fixture(scope="module")
def schema(tiny_table):
    return tiny_table.schema


class TestAggregates:
    def test_count_star(self, schema):
        query = parse_query("SELECT COUNT(*)", schema)
        assert query.aggregates[0].func is AggFunc.COUNT

    def test_sum_and_avg(self, schema):
        query = parse_query("SELECT SUM(x), AVG(y)", schema)
        assert [a.func for a in query.aggregates] == [AggFunc.SUM, AggFunc.AVG]
        assert query.aggregates[0].expr.label() == "x"

    def test_arithmetic_with_precedence(self, schema):
        query = parse_query("SELECT SUM(x + y * 2)", schema)
        assert query.aggregates[0].expr.label() == "(x + (y * 2.0))"

    def test_parenthesized_expression(self, schema):
        query = parse_query("SELECT SUM((x + y) / 2)", schema)
        assert query.aggregates[0].expr.label() == "((x + y) / 2.0)"

    def test_categorical_in_expression_rejected(self, schema):
        with pytest.raises(SQLParseError, match="numeric"):
            parse_query("SELECT SUM(cat)", schema)

    def test_count_requires_star(self, schema):
        with pytest.raises(SQLParseError):
            parse_query("SELECT COUNT(x)", schema)


class TestPredicates:
    def test_negative_literal_in_comparison(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE y < -2.5", schema)
        assert query.predicate == Comparison("y", "<", -2.5)

    def test_negative_literal_in_expression(self, schema):
        query = parse_query("SELECT SUM(x * -1)", schema)
        assert query.aggregates[0].expr.label() == "(x * -1.0)"

    def test_numeric_comparison(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE x > 5", schema)
        assert query.predicate == Comparison("x", ">", 5.0)

    def test_equality_normalization(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE x = 5", schema)
        assert query.predicate == Comparison("x", "==", 5.0)

    def test_categorical_equality_is_inset(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE cat = 'a'", schema)
        assert query.predicate == InSet("cat", {"a"})

    def test_categorical_inequality_is_negated_inset(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE cat <> 'a'", schema)
        assert query.predicate == Not(InSet("cat", {"a"}))

    def test_in_list(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE cat IN ('a', 'b')", schema)
        assert query.predicate == InSet("cat", {"a", "b"})

    def test_like_contains(self, schema):
        query = parse_query("SELECT COUNT(*) WHERE cat LIKE '%dd%'", schema)
        assert query.predicate == Contains("cat", "dd")

    def test_like_requires_substring_pattern(self, schema):
        with pytest.raises(SQLParseError, match="substring"):
            parse_query("SELECT COUNT(*) WHERE cat LIKE 'abc'", schema)

    def test_and_or_not_precedence(self, schema):
        query = parse_query(
            "SELECT COUNT(*) WHERE x > 1 AND y < 2 OR NOT d >= 3", schema
        )
        assert isinstance(query.predicate, Or)
        left, right = query.predicate.children
        assert isinstance(left, And)
        assert isinstance(right, Not)

    def test_parentheses_override_precedence(self, schema):
        query = parse_query(
            "SELECT COUNT(*) WHERE x > 1 AND (y < 2 OR d >= 3)", schema
        )
        assert isinstance(query.predicate, And)
        assert isinstance(query.predicate.children[1], Or)

    def test_range_comparison_on_categorical_rejected(self, schema):
        with pytest.raises(SQLParseError, match="supports"):
            parse_query("SELECT COUNT(*) WHERE cat > 'a'", schema)

    def test_in_on_numeric_rejected(self, schema):
        with pytest.raises(SQLParseError, match="categorical"):
            parse_query("SELECT COUNT(*) WHERE x IN ('1')", schema)


class TestGroupByAndErrors:
    def test_group_by(self, schema):
        query = parse_query("SELECT COUNT(*) GROUP BY cat, d", schema)
        assert query.group_by == ("cat", "d")

    def test_unknown_column(self, schema):
        with pytest.raises(SQLParseError, match="unknown column"):
            parse_query("SELECT SUM(zzz)", schema)

    def test_trailing_garbage(self, schema):
        with pytest.raises(SQLParseError, match="trailing"):
            parse_query("SELECT COUNT(*) HAVING x", schema)

    def test_missing_select(self, schema):
        with pytest.raises(SQLParseError):
            parse_query("COUNT(*)", schema)

    def test_error_reports_offset(self, schema):
        with pytest.raises(SQLParseError, match="offset"):
            parse_query("SELECT SUM(x) WHERE ???", schema)

    def test_escaped_quote_in_string(self, schema):
        query = parse_query(r"SELECT COUNT(*) WHERE cat = 'a\'b'", schema)
        assert query.predicate == InSet("cat", {"a'b"})


class TestEndToEnd:
    def test_parsed_query_matches_ast_query(self, tiny_table):
        text = (
            "SELECT SUM(x), COUNT(*), AVG(x + y) "
            "WHERE x > 5 AND cat IN ('a', 'b') GROUP BY cat"
        )
        parsed = parse_query(text, tiny_table.schema)
        answer = execute_on_table(tiny_table, parsed)
        # Cross-check against a hand-built evaluation.
        mask = (tiny_table.columns["x"] > 5) & np.isin(
            tiny_table.columns["cat"], ["a", "b"]
        )
        for key, vec in answer.items():
            rows = mask & (tiny_table.columns["cat"] == key[0])
            np.testing.assert_allclose(vec[0], tiny_table.columns["x"][rows].sum())
            assert vec[1] == rows.sum()

    def test_roundtrip_through_label(self, schema):
        """Parsed queries render labels that describe the same query."""
        query = parse_query(
            "SELECT SUM(x * 2) WHERE d <= 50 GROUP BY cat", schema
        )
        label = query.label()
        assert "SUM((x * 2.0))" in label
        assert "GROUP BY cat" in label
