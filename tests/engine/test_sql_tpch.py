"""Integration: the SQL front end against the TPC-H* schema.

Writes paper-style queries as SQL text over the synthetic denormalized
schema and checks the parsed queries execute to the same answers as
hand-built ASTs — the parser and the AST constructors must agree on
semantics, not just syntax.
"""

import numpy as np
import pytest

from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.executor import execute_on_table
from repro.engine.expressions import Const, col
from repro.engine.predicates import And, Comparison, InSet
from repro.engine.query import Query
from repro.engine.sql import parse_query


@pytest.fixture(scope="module")
def table(tpch_ptable):
    return tpch_ptable.table


def assert_same_answer(table, sql_query, ast_query):
    sql_answer = execute_on_table(table, sql_query)
    ast_answer = execute_on_table(table, ast_query)
    assert set(sql_answer) == set(ast_answer)
    for key in ast_answer:
        np.testing.assert_allclose(sql_answer[key], ast_answer[key], rtol=1e-9)


class TestPaperStyleSQL:
    def test_q6_style_revenue(self, table):
        sql = (
            "SELECT SUM(l_extendedprice * l_discount) "
            "WHERE l_shipdate >= 365 AND l_shipdate < 730 "
            "AND l_discount >= 0.05 AND l_discount <= 0.07 "
            "AND l_quantity < 24"
        )
        parsed = parse_query(sql, table.schema)
        ast = Query(
            [sum_of(col("l_extendedprice") * col("l_discount"))],
            And(
                [
                    Comparison("l_shipdate", ">=", 365),
                    Comparison("l_shipdate", "<", 730),
                    Comparison("l_discount", ">=", 0.05),
                    Comparison("l_discount", "<=", 0.07),
                    Comparison("l_quantity", "<", 24.0),
                ]
            ),
        )
        assert_same_answer(table, parsed, ast)

    def test_q1_style_pricing_summary(self, table):
        sql = (
            "SELECT SUM(l_quantity), SUM(l_extendedprice), "
            "SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity), COUNT(*) "
            "WHERE l_shipdate <= 2000 "
            "GROUP BY l_returnflag, l_linestatus"
        )
        parsed = parse_query(sql, table.schema)
        revenue = col("l_extendedprice") * (Const(1.0) - col("l_discount"))
        ast = Query(
            [
                sum_of(col("l_quantity")),
                sum_of(col("l_extendedprice")),
                sum_of(revenue),
                avg_of(col("l_quantity")),
                count_star(),
            ],
            Comparison("l_shipdate", "<=", 2000),
            ("l_returnflag", "l_linestatus"),
        )
        assert_same_answer(table, parsed, ast)

    def test_q5_style_regional_revenue(self, table):
        sql = (
            "SELECT SUM(l_extendedprice * (1 - l_discount)) "
            "WHERE r1_name = 'region#01' AND o_orderdate >= 0 "
            "AND o_orderdate < 365 "
            "GROUP BY n1_name"
        )
        parsed = parse_query(sql, table.schema)
        revenue = col("l_extendedprice") * (Const(1.0) - col("l_discount"))
        ast = Query(
            [sum_of(revenue)],
            And(
                [
                    InSet("r1_name", {"region#01"}),
                    Comparison("o_orderdate", ">=", 0),
                    Comparison("o_orderdate", "<", 365),
                ]
            ),
            ("n1_name",),
        )
        assert_same_answer(table, parsed, ast)

    def test_q14_style_promo_with_like(self, table):
        sql = (
            "SELECT SUM(l_extendedprice), COUNT(*) "
            "WHERE p_type LIKE '%type#0%' AND l_shipdate >= 100 "
            "AND l_shipdate < 130"
        )
        parsed = parse_query(sql, table.schema)
        answer = execute_on_table(table, parsed)
        # Cross-check against a direct mask evaluation.
        mask = (
            (np.char.find(table.columns["p_type"].astype(str), "type#0") >= 0)
            & (table.columns["l_shipdate"] >= 100)
            & (table.columns["l_shipdate"] < 130)
        )
        if mask.any():
            np.testing.assert_allclose(
                answer[()][0], table.columns["l_extendedprice"][mask].sum()
            )
            assert answer[()][1] == mask.sum()
        else:
            assert answer == {}

    def test_runs_through_trained_system(self, trained_ps3, table):
        sql = (
            "SELECT SUM(l_extendedprice), COUNT(*) "
            "WHERE l_quantity > 25 GROUP BY l_shipmode"
        )
        query = parse_query(sql, table.schema)
        answer = trained_ps3.query(query, budget_fraction=0.5)
        report = trained_ps3.evaluate(query, answer)
        assert report.avg_relative_error < 0.5
