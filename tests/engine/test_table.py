"""Unit tests for Table / Partition / PartitionedTable."""

import numpy as np
import pytest

from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import PartitionedTable, Table
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema.of(
        Column("x", ColumnKind.NUMERIC),
        Column("c", ColumnKind.CATEGORICAL),
        Column("d", ColumnKind.DATE),
    )


@pytest.fixture
def table(schema):
    return Table(
        schema,
        {
            "x": np.arange(10, dtype=np.float64),
            "c": np.array(list("aabbccddee")),
            "d": np.arange(10),
        },
    )


class TestTable:
    def test_num_rows(self, table):
        assert table.num_rows == 10
        assert len(table) == 10

    def test_missing_column_rejected(self, schema):
        with pytest.raises(SchemaError, match="mismatch"):
            Table(schema, {"x": np.zeros(3)})

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(SchemaError, match="ragged"):
            Table(
                schema,
                {"x": np.zeros(3), "c": np.array(["a"] * 4), "d": np.arange(3)},
            )

    def test_integer_numeric_coerced_to_float(self, schema):
        t = Table(
            schema,
            {"x": np.arange(3), "c": np.array(["a"] * 3), "d": np.arange(3)},
        )
        assert t.columns["x"].dtype == np.float64

    def test_string_dtype_required_for_categorical(self, schema):
        with pytest.raises(SchemaError, match="strings"):
            Table(
                schema,
                {"x": np.zeros(3), "c": np.zeros(3), "d": np.arange(3)},
            )

    def test_date_requires_integers(self, schema):
        with pytest.raises(SchemaError, match="integer"):
            Table(
                schema,
                {"x": np.zeros(3), "c": np.array(["a"] * 3), "d": np.zeros(3)},
            )

    def test_take_reorders(self, table):
        reordered = table.take(np.array([2, 0, 1]))
        np.testing.assert_array_equal(reordered.columns["x"], [2.0, 0.0, 1.0])
        assert table.columns["x"][0] == 0.0  # original untouched


class TestPartitionedTable:
    def test_even_partitioning(self, table):
        pt = PartitionedTable(table, (0, 5, 10))
        assert pt.num_partitions == 2
        assert [len(p) for p in pt] == [5, 5]
        np.testing.assert_array_equal(pt[1].column("x"), np.arange(5, 10))

    def test_partition_views_are_zero_copy(self, table):
        pt = PartitionedTable(table, (0, 5, 10))
        view = pt[0].column("x")
        assert view.base is table.columns["x"]

    def test_bad_boundaries_rejected(self, table):
        with pytest.raises(SchemaError):
            PartitionedTable(table, (0, 5))  # does not reach num_rows
        with pytest.raises(SchemaError):
            PartitionedTable(table, (0, 5, 5, 10))  # empty partition

    def test_partition_sizes(self, table):
        pt = PartitionedTable(table, (0, 3, 10))
        np.testing.assert_array_equal(pt.partition_sizes(), [3, 7])
