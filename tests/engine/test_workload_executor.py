"""Workload executor: differential parity, sharing/dedup, edge cases.

The differential harness (``tests/engine/conftest.py``) runs every case
through all three execution paths; the tests here add the
workload-specific contracts on top: duplicate-query dedup, mask and
factorization sharing, the ``AnswerMatrix`` array views, the lazy
``ComponentAnswer`` compatibility sequence, array-path contributions,
and the edge cases none of the executors had coverage for (predicates
emptying some or all partitions, single-partition tables, duplicate
queries in one workload, groups present in only one partition, empty
partition subsets).

``PartitionedTable`` rejects zero-row partitions by construction, so
"empty partition" here always means a partition whose rows are all
filtered out — plus the batch executor's explicit empty partition-subset
gather, which is the one way a zero-partition execution can happen.
"""

import numpy as np
import pytest

from repro.core.contribution import partition_contributions
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.batch_executor import BatchExecutor
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.engine.workload_executor import (
    WorkloadExecutor,
    compute_workload_answers,
)

SCHEMA = Schema.of(
    Column("x", ColumnKind.NUMERIC, positive=True),
    Column("y", ColumnKind.NUMERIC),
    Column("d", ColumnKind.DATE),
    Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
    Column("tag", ColumnKind.CATEGORICAL),
)


def build_table(num_rows: int, seed: int = 5, days: int = 40) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "x": rng.exponential(10.0, num_rows) + 1.0,
            "y": rng.normal(0.0, 5.0, num_rows).round(3),
            "d": rng.integers(0, days, num_rows),
            "cat": rng.choice(["a", "b", "c", "dd"], num_rows),
            "tag": rng.choice([f"t{i:03d}" for i in range(40)], num_rows),
        },
    )


def training_workload() -> list[Query]:
    """A >= 32-query workload with deliberate predicate/group-by overlap."""
    range_pred = And([Comparison("x", ">", 2.0), Comparison("d", "<=", 25.0)])
    tail_pred = Or([Comparison("y", "<", -4.0), Comparison("y", ">", 4.0)])
    queries: list[Query] = []
    for group_by in [(), ("cat",), ("d",), ("cat", "d")]:
        queries.append(Query([sum_of(col("x")), count_star()], range_pred, group_by))
        queries.append(Query([avg_of(col("y"))], tail_pred, group_by))
        queries.append(Query([count_star()], InSet("cat", {"a", "c"}), group_by))
        queries.append(Query([sum_of(col("x") + col("y"))], None, group_by))
        queries.append(
            Query(
                [count_star(), sum_of(col("y"))],
                Not(And([Comparison("x", ">", 1.0), InSet("cat", {"b"})])),
                group_by,
            )
        )
        queries.append(Query([sum_of(col("y") * 2.0 - 1.0)], range_pred, group_by))
        queries.append(Query([avg_of(col("x"))], Contains("tag", "t01"), group_by))
        queries.append(Query([count_star()], Comparison("d", "==", 7.0), group_by))
    assert len(queries) >= 32
    return queries


@pytest.fixture(scope="module")
def ptable():
    return partition_evenly(build_table(4000), 16)


class TestWorkloadParity:
    def test_training_workload_three_way(self, ptable, three_way):
        """The acceptance case: a >=32-query workload, three paths, bitwise."""
        three_way(ptable, training_workload())

    def test_division_expression_stays_filtered(self, ptable, three_way):
        """`/` must only see surviving rows (scalar error semantics)."""
        queries = [
            Query([sum_of(col("x") / col("x"))], Comparison("x", ">", 3.0), ("cat",)),
            Query([avg_of(col("y") / col("x"))], Comparison("d", "<", 10.0)),
        ]
        three_way(ptable, queries)

    def test_cached_executor_reused_across_calls(self, ptable):
        first = WorkloadExecutor.for_table(ptable)
        second = WorkloadExecutor.for_table(ptable)
        assert first is second
        matrix = compute_workload_answers(ptable, training_workload()[:4])
        assert matrix.num_partitions == ptable.num_partitions


class TestSharingAndDedup:
    def test_duplicate_queries_alias_one_block(self, ptable):
        executor = WorkloadExecutor(ptable)
        query = Query([sum_of(col("x"))], Comparison("x", ">", 5.0), ("cat",))
        twin = Query([sum_of(col("x"))], Comparison("x", ">", 5.0), ("cat",))
        other = Query([count_star()], Comparison("x", ">", 5.0), ("d",))
        matrix = executor.answer_matrix([query, other, twin, query])
        assert matrix.block(0) is matrix.block(2)
        assert matrix.block(0) is matrix.block(3)
        assert matrix.block(0) is not matrix.block(1)
        assert executor.query_dedup_hits == 2
        # The lazy dict views alias too, so materialization happens once.
        assert matrix.answers(0) is matrix.answers(2)

    def test_mask_shared_across_queries_with_same_predicate(self, ptable):
        executor = WorkloadExecutor(ptable)
        predicate = Comparison("y", ">", 0.0)
        workload = [
            Query([count_star()], predicate, ("cat",)),
            Query([sum_of(col("x"))], predicate, ("d",)),
            Query([avg_of(col("y"))], predicate),
        ]
        executor.answer_matrix(workload)
        # One compile for the predicate; the other gets() are hits (the
        # factorization lookups hit the same entries again).
        assert executor.mask_plans.misses == 1
        assert executor.mask_plans.hits >= 2

    def test_factorization_shared_across_predicates(self, ptable):
        executor = WorkloadExecutor(ptable)
        workload = [
            Query([count_star()], Comparison("x", ">", 4.0), ("cat", "d")),
            Query([sum_of(col("y"))], Comparison("x", ">", 8.0), ("cat", "d")),
            Query([count_star()], None, ("d", "cat")),
        ]
        executor.answer_matrix(workload)
        # Per-column codes computed once per column despite three
        # different (group_by, predicate) factorizations.
        assert set(executor._column_codes) == {"cat", "d"}
        assert len(executor._factorizations) == 3

    def test_dedup_never_changes_results(self, ptable, assert_bitwise_equal):
        """Shared-cache answers == fresh-executor per-query answers."""
        workload = training_workload()[:10]
        shared = WorkloadExecutor(ptable).answer_matrix(workload)
        for qi, query in enumerate(workload):
            fresh = WorkloadExecutor(ptable).answer_matrix([query])
            assert_bitwise_equal(
                shared.answers(qi), fresh.answers(0), query.label()
            )


class TestAnswerMatrixViews:
    def test_dense_block_matches_dicts(self, ptable):
        query = Query(
            [sum_of(col("x")), count_star()],
            Comparison("x", ">", 5.0),
            ("cat",),
        )
        matrix = WorkloadExecutor(ptable).answer_matrix([query])
        totals, present = matrix.dense(0)
        keys = matrix.group_keys(0)
        answers = matrix.answers(0)
        assert totals.shape == (ptable.num_partitions, len(keys), 2)
        assert present.shape == (ptable.num_partitions, len(keys))
        for p in range(ptable.num_partitions):
            answer = answers[p]
            for g, key in enumerate(keys):
                if present[p, g]:
                    assert answer[key].tobytes() == totals[p, g].tobytes()
                else:
                    assert key not in answer
            assert len(answer) == int(present[p].sum())

    def test_lazy_view_sequence_protocol(self, ptable):
        query = Query([count_star()], None, ("cat",))
        matrix = WorkloadExecutor(ptable).answer_matrix([query])
        view = matrix.answers(0)
        assert len(view) == ptable.num_partitions
        assert view[-1] == view[ptable.num_partitions - 1]
        assert view[2:4] == [view[2], view[3]]
        assert list(iter(view)) == view.materialize()
        assert view == view.materialize()  # __eq__ against a plain list
        with pytest.raises(IndexError):
            view[ptable.num_partitions]

    def test_lazy_view_equality_with_foreign_arrays(self, ptable, answers_via):
        """__eq__ vs dicts holding *different* array objects (regression:
        plain dict equality truth-tests numpy vectors and raises)."""
        query = Query([sum_of(col("x")), count_star()], None, ("cat",))
        matrix = WorkloadExecutor(ptable).answer_matrix([query])
        view = matrix.answers(0)
        scalar = answers_via("scalar", ptable, query)
        assert view == scalar
        perturbed = [dict(a) for a in scalar]
        perturbed[0][("a",)] = perturbed[0][("a",)] + 1.0
        assert view != perturbed
        assert view != scalar[:-1]

    def test_contributions_match_dict_path_bitwise(self, ptable):
        workload = training_workload()
        matrix = WorkloadExecutor(ptable).answer_matrix(workload)
        for qi, query in enumerate(workload):
            dicts = BatchExecutor.for_table(ptable).partition_answers(query)
            expected = partition_contributions(dicts)
            assert matrix.contributions(qi).tobytes() == expected.tobytes(), (
                query.label()
            )

    def test_contributions_cached_per_block(self, ptable):
        query = Query([count_star()], None, ("cat",))
        matrix = WorkloadExecutor(ptable).answer_matrix([query, query])
        assert matrix.contributions(0) is matrix.contributions(1)


class TestEdgeCases:
    """Coverage for both executors on the previously untested corners."""

    def _edge_queries(self):
        return [
            # Matches zero rows everywhere.
            Query(
                [sum_of(col("x")), count_star()],
                Comparison("y", ">", 1e9),
                ("cat",),
            ),
            Query([count_star()], Comparison("y", ">", 1e9)),
            # Matches rows in only some partitions (d is sorted-ish ranges
            # on the partitioned fixture below).
            Query(
                [count_star(), avg_of(col("x"))],
                Comparison("d", "==", 0.0),
                ("cat",),
            ),
            Query([sum_of(col("y"))], Comparison("d", "<", 2.0)),
        ]

    def test_predicate_empties_all_partitions(self, ptable, three_way):
        matrix = three_way(ptable, self._edge_queries()[:2])
        assert matrix.answers(0).materialize() == [
            {} for __ in range(ptable.num_partitions)
        ]
        totals, present = matrix.dense(0)
        assert totals.shape[1] == 0 and not present.any()
        assert matrix.contributions(0).tobytes() == np.zeros(
            ptable.num_partitions
        ).tobytes()

    def test_predicate_empties_some_partitions(self, three_way):
        # Sort by d so low-d rows land in the first partitions only.
        from repro.engine.layout import sort_table

        table = sort_table(build_table(600, seed=9), "d")
        ptable = partition_evenly(table, 8)
        matrix = three_way(ptable, self._edge_queries()[2:])
        answers = matrix.answers(0).materialize()
        assert any(not a for a in answers) and any(a for a in answers)

    def test_single_partition_table(self, three_way):
        ptable = partition_evenly(build_table(150, seed=3), 1)
        queries = training_workload()[:12] + self._edge_queries()
        matrix = three_way(ptable, queries)
        assert matrix.num_partitions == 1

    def test_duplicate_queries_in_workload(self, ptable, three_way):
        query = Query([avg_of(col("y"))], Comparison("x", ">", 4.0), ("cat",))
        three_way(ptable, [query, query, query])

    def test_group_present_in_only_one_partition(self, three_way):
        # One 'rare' group value confined to a single partition.
        table = build_table(400, seed=21)
        cat = table.columns["cat"].astype("U8")  # widen past '<U2'
        cat[37] = "only"  # partition 0 of 8 (rows 0..49)
        columns = dict(table.columns)
        columns["cat"] = cat
        ptable = partition_evenly(Table(SCHEMA, columns), 8)
        query = Query([count_star(), sum_of(col("x"))], None, ("cat",))
        matrix = three_way(ptable, [query])
        answers = matrix.answers(0)
        present_in = [p for p in range(8) if ("only",) in answers[p]]
        assert present_in == [0]
        assert answers[0][("only",)][0] == 1.0

    def test_empty_partition_subset_gather(self, ptable):
        """The one true zero-partition execution: an empty subset."""
        query = Query([count_star()], None, ("cat",))
        assert BatchExecutor.for_table(ptable).partition_answers(
            query, partitions=[]
        ) == []
        assert BatchExecutor.for_table(ptable).partition_answers(
            query, partitions=np.empty(0, dtype=np.intp)
        ) == []


class TestUngroupedSummationOrder:
    """Regression pin for the scalar `values.sum()` (pairwise) contract.

    Ungrouped SUM answers must come from numpy's *pairwise* summation of
    each partition's surviving values — not the sequential left-to-right
    chain a bincount reduction would produce. The fixture data is chosen
    so the two orders give different float64 results in every partition;
    all three paths must land on the pairwise one, bit for bit.
    """

    @pytest.fixture()
    def adversarial_ptable(self):
        num_rows = 7000
        rng = np.random.default_rng(1234)
        spikes = np.where(np.arange(num_rows) % 7 == 0, 1e9, 1.0)
        values = (rng.uniform(0.0, 1.0, num_rows) * spikes).round(6)
        table = build_table(num_rows, seed=8)
        columns = dict(table.columns)
        columns["y"] = values
        return partition_evenly(Table(SCHEMA, columns), 4)

    def test_pairwise_differs_from_sequential_here(self, adversarial_ptable):
        """The fixture discriminates: sequential order would be wrong."""
        for partition in adversarial_ptable:
            values = partition.column("y")
            sequential = np.bincount(
                np.zeros(len(values), dtype=np.intp), weights=values
            )[0]
            assert values.sum() != sequential

    def test_three_way_pairwise_parity(self, adversarial_ptable, three_way):
        queries = [
            Query([sum_of(col("y")), count_star()]),
            Query([sum_of(col("y"))], Comparison("x", ">", 2.0)),
            Query([avg_of(col("y"))], None),
        ]
        matrix = three_way(adversarial_ptable, queries)
        # Pin the actual pairwise totals explicitly.
        answers = matrix.answers(0)
        for partition, answer in zip(adversarial_ptable, answers):
            expected = partition.column("y").sum()
            assert answer[()][0] == expected
