"""Unit tests for the from-scratch gradient-boosted trees."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.ml.gbrt import GBRTRegressor, _quantile_bin_edges


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 20))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 5] + 0.05 * rng.normal(size=2000)
    return X, y


class TestBinning:
    def test_few_uniques_split_between_values(self):
        edges = _quantile_bin_edges(np.array([1.0, 1.0, 2.0, 3.0]), 64)
        np.testing.assert_allclose(edges, [1.5, 2.5])

    def test_constant_feature_has_no_edges(self):
        assert _quantile_bin_edges(np.full(10, 4.2), 64).size == 0

    def test_edges_are_sorted_unique(self):
        values = np.random.default_rng(1).exponential(1.0, 5000)
        edges = _quantile_bin_edges(values, 32)
        assert np.all(np.diff(edges) > 0)
        assert edges.size <= 31


class TestFit:
    def test_learns_linear_signal(self, linear_data):
        X, y = linear_data
        model = GBRTRegressor(n_trees=40, max_depth=3, seed=1).fit(X, y)
        pred = model.predict(X)
        r2 = 1.0 - np.var(y - pred) / np.var(y)
        assert r2 > 0.9

    def test_generalizes_to_held_out(self, linear_data):
        X, y = linear_data
        model = GBRTRegressor(n_trees=40, seed=1).fit(X[:1500], y[:1500])
        pred = model.predict(X[1500:])
        r2 = 1.0 - np.var(y[1500:] - pred) / np.var(y[1500:])
        assert r2 > 0.8

    def test_constant_target_converges_immediately(self):
        X = np.random.default_rng(0).normal(size=(100, 5))
        model = GBRTRegressor(n_trees=20).fit(X, np.full(100, 7.0))
        np.testing.assert_allclose(model.predict(X), 7.0)
        assert model.num_trees_fitted == 0

    def test_colsample_still_learns(self, linear_data):
        X, y = linear_data
        model = GBRTRegressor(n_trees=60, colsample=0.4, seed=2).fit(X, y)
        pred = model.predict(X)
        r2 = 1.0 - np.var(y - pred) / np.var(y)
        assert r2 > 0.8

    def test_min_samples_leaf_respected(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 10).astype(float)
        model = GBRTRegressor(n_trees=1, max_depth=8, min_samples_leaf=8).fit(X, y)
        tree = model._trees[0]
        # Count leaf populations by running training data through the tree.
        assert model.num_trees_fitted == 1
        assert (tree.feature >= 0).sum() <= 2  # few splits possible at n=20


class TestImportance:
    def test_gain_concentrates_on_signal_features(self, linear_data):
        X, y = linear_data
        model = GBRTRegressor(n_trees=40, seed=1).fit(X, y)
        importances = model.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        top2 = set(np.argsort(importances)[-2:])
        assert top2 == {0, 5}

    def test_importance_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GBRTRegressor().feature_importances()


class TestValidation:
    def test_bad_hyperparameters(self):
        with pytest.raises(ConfigError):
            GBRTRegressor(n_trees=0)
        with pytest.raises(ConfigError):
            GBRTRegressor(learning_rate=0.0)
        with pytest.raises(ConfigError):
            GBRTRegressor(colsample=1.5)
        with pytest.raises(ConfigError):
            GBRTRegressor(num_bins=1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            GBRTRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GBRTRegressor().predict(np.zeros((1, 2)))

    def test_predict_wrong_width_rejected(self, linear_data):
        X, y = linear_data
        model = GBRTRegressor(n_trees=2).fit(X, y)
        with pytest.raises(ConfigError):
            model.predict(np.zeros((3, 7)))
