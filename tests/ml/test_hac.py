"""Unit tests for hierarchical agglomerative clustering."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ml.hac import agglomerative


@pytest.fixture
def three_blobs():
    rng = np.random.default_rng(3)
    return np.vstack(
        [
            rng.normal((0, 0), 0.15, (30, 2)),
            rng.normal((6, 0), 0.15, (30, 2)),
            rng.normal((0, 6), 0.15, (30, 2)),
        ]
    )


class TestLinkages:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs(self, three_blobs, linkage):
        labels = agglomerative(three_blobs, 3, linkage)
        for start in (0, 30, 60):
            block = labels[start : start + 30]
            assert len(np.unique(block)) == 1
        assert len(np.unique(labels)) == 3

    def test_single_linkage_chains(self):
        # A dense chain plus one distant point: single linkage keeps the
        # chain whole where ward prefers balanced splits.
        chain = np.column_stack([np.linspace(0, 10, 50), np.zeros(50)])
        outlier = np.array([[100.0, 0.0]])
        points = np.vstack([chain, outlier])
        labels = agglomerative(points, 2, "single")
        assert len(np.unique(labels[:50])) == 1
        assert labels[50] != labels[0]

    def test_ward_splits_by_variance(self, three_blobs):
        labels2 = agglomerative(three_blobs, 2, "ward")
        sizes = np.bincount(labels2)
        assert sorted(sizes.tolist()) == [30, 60]


class TestStructure:
    def test_n_clusters_equals_points_is_identity(self):
        points = np.random.default_rng(0).normal(size=(7, 3))
        labels = agglomerative(points, 7)
        assert len(np.unique(labels)) == 7

    def test_n_clusters_larger_than_points(self):
        points = np.random.default_rng(0).normal(size=(4, 2))
        labels = agglomerative(points, 10)
        assert len(np.unique(labels)) == 4

    def test_one_cluster(self, three_blobs):
        labels = agglomerative(three_blobs, 1)
        assert len(np.unique(labels)) == 1

    def test_labels_contiguous(self, three_blobs):
        labels = agglomerative(three_blobs, 5, "ward")
        assert set(labels) == set(range(5))

    def test_identical_points_merge_first(self):
        points = np.array([[0.0], [0.0], [5.0], [5.0], [99.0]])
        labels = agglomerative(points, 3, "average")
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])


class TestValidation:
    def test_bad_linkage(self):
        with pytest.raises(ConfigError):
            agglomerative(np.zeros((3, 2)), 2, "median")

    def test_bad_cluster_count(self):
        with pytest.raises(ConfigError):
            agglomerative(np.zeros((3, 2)), 0)

    def test_empty_input(self):
        with pytest.raises(ConfigError):
            agglomerative(np.empty((0, 2)), 1)
