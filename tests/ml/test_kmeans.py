"""Unit tests for the from-scratch KMeans."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.ml.kmeans import KMeans


@pytest.fixture
def three_blobs():
    rng = np.random.default_rng(0)
    return np.vstack(
        [
            rng.normal((0, 0), 0.2, (40, 2)),
            rng.normal((8, 0), 0.2, (40, 2)),
            rng.normal((0, 8), 0.2, (40, 2)),
        ]
    )


class TestClustering:
    def test_recovers_separated_blobs(self, three_blobs):
        labels = KMeans(3, seed=1).fit_predict(three_blobs)
        # Each blob maps to a single cluster.
        for start in (0, 40, 80):
            block = labels[start : start + 40]
            assert len(np.unique(block)) == 1
        assert len(np.unique(labels)) == 3

    def test_inertia_decreases_with_k(self, three_blobs):
        inertias = []
        for k in (1, 2, 3):
            model = KMeans(k, seed=0).fit(three_blobs)
            inertias.append(model.inertia_)
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_at_least_points_gives_singletons(self):
        points = np.arange(5, dtype=float).reshape(-1, 1) * 10
        labels = KMeans(10, seed=0).fit_predict(points)
        assert len(np.unique(labels)) == 5

    def test_duplicate_points_handled(self):
        points = np.zeros((20, 3))
        labels = KMeans(4, seed=0).fit_predict(points)
        assert labels.shape == (20,)

    def test_deterministic_for_fixed_seed(self, three_blobs):
        a = KMeans(3, seed=42).fit_predict(three_blobs)
        b = KMeans(3, seed=42).fit_predict(three_blobs)
        np.testing.assert_array_equal(a, b)

    def test_predict_assigns_nearest_center(self, three_blobs):
        model = KMeans(3, seed=1).fit(three_blobs)
        label_of_origin = model.predict(np.array([[0.0, 0.0]]))[0]
        assert label_of_origin == model.labels_[0]


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ConfigError):
            KMeans(0)

    def test_empty_input(self):
        with pytest.raises(ConfigError):
            KMeans(2).fit(np.empty((0, 3)))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(2).predict(np.zeros((1, 2)))
