"""Unit tests for the histogram regression tree builder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ml.tree import TreeBuilder


def build_tree(X_binned, gradients, **kwargs):
    builder = TreeBuilder(**kwargs)
    feature_ids = np.arange(X_binned.shape[1])
    return builder.build(X_binned, gradients, feature_ids, num_bins=8)


class TestSplits:
    def test_perfect_split_found(self):
        # Feature 0 bin <= 3 has gradient +1, else -1.
        binned = np.column_stack(
            [np.repeat([0, 7], 50), np.zeros(100, dtype=np.int32)]
        ).astype(np.int32)
        gradients = np.repeat([1.0, -1.0], 50)
        tree = build_tree(binned, gradients, max_depth=2)
        assert tree.feature[0] == 0  # root splits on the signal feature
        predictions = tree.predict_binned(binned)
        # Negative-gradient step: predictions oppose gradients.
        assert predictions[0] < 0 < predictions[99]

    def test_no_split_when_gradients_uniform(self):
        binned = np.zeros((50, 3), dtype=np.int32)
        gradients = np.full(50, 2.0)
        tree = build_tree(binned, gradients)
        assert tree.feature[0] == -1  # root stays a leaf
        # Leaf value is the regularized mean step.
        assert tree.value[0] == pytest.approx(-100.0 / 51.0)

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(0)
        binned = rng.integers(0, 8, (500, 4)).astype(np.int32)
        gradients = rng.normal(size=500)
        tree = build_tree(binned, gradients, max_depth=2)
        # A depth-2 binary tree has at most 3 internal + 4 leaf nodes.
        assert len(tree.feature) <= 7

    def test_gain_bookkeeping(self):
        binned = np.column_stack(
            [np.repeat([0, 7], 50), np.zeros(100, dtype=np.int32)]
        ).astype(np.int32)
        gradients = np.repeat([1.0, -1.0], 50)
        tree = build_tree(binned, gradients, max_depth=1)
        assert 0 in tree.gain_by_feature
        assert tree.gain_by_feature[0] > 0


class TestValidation:
    def test_bad_depth(self):
        with pytest.raises(ConfigError):
            TreeBuilder(max_depth=0)

    def test_bad_min_samples(self):
        with pytest.raises(ConfigError):
            TreeBuilder(min_samples_leaf=0)
