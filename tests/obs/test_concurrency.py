"""Multi-thread hammer: counters never lose increments, histograms conserve."""

import threading

import pytest

from repro.obs import MetricsRegistry

THREADS = 8
ITERATIONS = 2_000


def _hammer(target, barrier):
    barrier.wait()
    target()


def _run_threads(target):
    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(target=_hammer, args=(target, barrier))
        for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_no_lost_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("hits")

    def work():
        for _ in range(ITERATIONS):
            counter.inc()

    _run_threads(work)
    assert counter.value == THREADS * ITERATIONS


def test_gauge_add_is_atomic():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")

    def work():
        for _ in range(ITERATIONS):
            gauge.add(1)
            gauge.add(-1)

    _run_threads(work)
    assert gauge.value == 0


def test_gauge_set_max_tracks_true_peak():
    registry = MetricsRegistry()
    depth = registry.gauge("depth")
    peak = registry.gauge("peak")

    def work():
        for _ in range(ITERATIONS):
            peak.set_max(depth.add(1))
            depth.add(-1)

    _run_threads(work)
    assert depth.value == 0
    assert 1 <= peak.value <= THREADS


def test_histogram_totals_conserved_under_contention():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    per_thread = [1e-5 * (i + 1) for i in range(THREADS)]

    def work():
        slot = int(threading.current_thread().name.split("-")[-1])
        value = per_thread[slot % THREADS]
        for _ in range(ITERATIONS):
            hist.observe(value)

    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(
            target=_hammer, args=(work, barrier), name=f"hammer-{i}"
        )
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = THREADS * ITERATIONS
    assert hist.count == total
    expected_sum = ITERATIONS * sum(per_thread)
    assert hist.sum == pytest.approx(expected_sum)
    snap = registry.snapshot()["histograms"]["lat"]
    # Conservation law: bucket counts account for every observation.
    assert sum(snap["buckets"]) == total


def test_instrument_creation_race_yields_one_instrument():
    registry = MetricsRegistry()
    created = []

    def work():
        created.append(registry.counter("shared"))
        registry.counter("shared").inc()

    _run_threads(work)
    assert all(instrument is created[0] for instrument in created)
    assert registry.counter("shared").value == THREADS
