"""MetricsRegistry semantics: instruments, snapshots, deltas, disabled."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
    snapshot_delta,
)


def test_counter_inc_and_value():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42


def test_instruments_are_idempotent_by_name():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_name_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("metric")
    with pytest.raises(ConfigError, match="already exists"):
        registry.gauge("metric")
    with pytest.raises(ConfigError, match="already exists"):
        registry.histogram("metric")


def test_gauge_set_add_and_set_max():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    assert gauge.add(3) == 3
    assert gauge.add(-1) == 2
    gauge.set_max(10)
    assert gauge.value == 10
    gauge.set_max(5)  # not a new high-water mark
    assert gauge.value == 10
    gauge.set(0)
    assert gauge.value == 0


def test_histogram_totals_and_extremes():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    values = [1e-5, 3e-4, 0.002, 0.002, 1.5]
    for value in values:
        hist.observe(value)
    assert hist.count == len(values)
    assert hist.sum == pytest.approx(sum(values))
    snap = registry.snapshot()["histograms"]["lat"]
    assert snap["min"] == pytest.approx(1e-5)
    assert snap["max"] == pytest.approx(1.5)
    assert sum(snap["buckets"]) == len(values)


def test_histogram_percentiles_are_ordered_and_bounded():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    values = [i * 1e-4 for i in range(1, 200)]
    for value in values:
        hist.observe(value)
    p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
    assert p50 <= p95 <= p99
    # Fixed-bucket estimation: clamped to the observed range, and the
    # median lands within one geometric bucket (10**0.25x) of the truth.
    assert min(values) <= p50 <= max(values)
    assert p99 <= max(values)
    true_p50 = values[len(values) // 2]
    assert true_p50 / 1.8 <= p50 <= true_p50 * 1.8


def test_histogram_overflow_bucket_pins_to_observed_max():
    registry = MetricsRegistry()
    hist = registry.histogram("big", bounds=(1.0, 2.0))
    hist.observe(100.0)
    assert hist.percentile(99) == pytest.approx(100.0)


def test_empty_histogram_percentile_is_none():
    registry = MetricsRegistry()
    assert registry.histogram("empty").percentile(50) is None


def test_histogram_bounds_must_ascend():
    registry = MetricsRegistry()
    with pytest.raises(ConfigError, match="ascending"):
        registry.histogram("bad", bounds=(2.0, 1.0))


def test_snapshot_is_json_serializable():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(7)
    registry.histogram("h").observe(0.01)
    text = json.dumps(registry.snapshot())
    decoded = json.loads(text)
    assert decoded["counters"]["c"] == 1
    assert decoded["gauges"]["g"] == 7
    assert decoded["histograms"]["h"]["count"] == 1


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.counter("c").inc(5)
    registry.gauge("g").set(9)
    registry.gauge("g").add(3)
    registry.gauge("g").set_max(99)
    registry.histogram("h").observe(1.0)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 0
    assert snap["gauges"]["g"] == 0
    assert snap["histograms"]["h"]["count"] == 0


def test_enable_disable_toggle():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    registry.disable()
    counter.inc()
    registry.enable()
    counter.inc()
    assert counter.value == 2


def test_snapshot_delta_subtracts_counters_and_histograms():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    hist = registry.histogram("h")
    counter.inc(10)
    hist.observe(0.001)
    before = registry.snapshot()
    counter.inc(5)
    hist.observe(0.002)
    hist.observe(0.004)
    registry.gauge("g").set(3)
    delta = snapshot_delta(before, registry.snapshot())
    assert delta["counters"]["c"] == 5
    assert delta["histograms"]["h"]["count"] == 2
    assert delta["histograms"]["h"]["sum"] == pytest.approx(0.006)
    assert sum(delta["histograms"]["h"]["buckets"]) == 2
    # Gauges are point-in-time: the after value is reported as-is.
    assert delta["gauges"]["g"] == 3
    # Delta percentiles re-estimate from the interval's buckets only.
    assert delta["histograms"]["h"]["p50"] >= 0.001


def test_snapshot_delta_handles_instruments_born_in_the_interval():
    registry = MetricsRegistry()
    before = registry.snapshot()
    registry.counter("new").inc(7)
    registry.histogram("fresh").observe(0.5)
    delta = snapshot_delta(before, registry.snapshot())
    assert delta["counters"]["new"] == 7
    assert delta["histograms"]["fresh"]["count"] == 1


def test_default_registry_swap_roundtrip():
    mine = MetricsRegistry()
    previous = set_registry(mine)
    try:
        assert get_registry() is mine
    finally:
        set_registry(previous)
    assert get_registry() is previous
