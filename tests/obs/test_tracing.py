"""trace_span: nesting, wall/CPU recording, exceptions, disabled path."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    StageProfiler,
    current_span,
    trace_span,
    wrap_stage,
)


def test_span_records_calls_wall_and_cpu():
    registry = MetricsRegistry()
    with trace_span("stage.a", registry=registry) as span:
        pass
    assert span.wall_seconds >= 0.0
    assert span.cpu_seconds >= 0.0
    assert registry.counter("stage.a.calls").value == 1
    assert registry.histogram("stage.a.wall_seconds").count == 1
    assert registry.histogram("stage.a.cpu_seconds").count == 1


def test_spans_nest_and_track_parents():
    registry = MetricsRegistry()
    assert current_span() is None
    with trace_span("outer", registry=registry) as outer:
        assert current_span() is outer
        assert outer.parent is None
        assert outer.depth == 0
        with trace_span("inner", registry=registry, step=3) as inner:
            assert current_span() is inner
            assert inner.parent is outer
            assert inner.depth == 1
            assert inner.tags == {"step": 3}
        assert current_span() is outer
    assert current_span() is None


def test_exception_still_records_and_propagates():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="boom"):
        with trace_span("failing", registry=registry):
            raise ValueError("boom")
    assert current_span() is None  # stack unwound
    assert registry.counter("failing.calls").value == 1
    assert registry.histogram("failing.wall_seconds").count == 1


def test_disabled_registry_returns_shared_noop_span():
    registry = MetricsRegistry(enabled=False)
    first = trace_span("anything", registry=registry)
    second = trace_span("other", registry=registry)
    assert first is second  # the shared null context manager
    with first as span:
        assert span is None
        assert current_span() is None
    assert registry.snapshot()["counters"] == {}


def test_profiler_sees_spans_even_when_metrics_disabled():
    registry = MetricsRegistry(enabled=False)
    profiler = StageProfiler()
    registry.add_profiler(profiler)
    with trace_span("profiled", registry=registry):
        pass
    report = profiler.report()
    assert report["profiled"]["calls"] == 1
    assert report["profiled"]["wall_seconds"] >= 0.0
    # Metric recording stayed off.
    assert registry.snapshot()["counters"] == {}
    registry.remove_profiler(profiler)
    with trace_span("after", registry=registry):
        pass
    assert "after" not in profiler.report()


def test_profiler_counts_errors():
    registry = MetricsRegistry()
    profiler = StageProfiler()
    registry.add_profiler(profiler)
    with pytest.raises(RuntimeError):
        with trace_span("sometimes", registry=registry):
            raise RuntimeError
    with trace_span("sometimes", registry=registry):
        pass
    entry = profiler.report()["sometimes"]
    assert entry["calls"] == 2
    assert entry["errors"] == 1


def test_span_stacks_are_per_thread():
    registry = MetricsRegistry()
    seen = {}
    ready = threading.Barrier(2)

    def worker(name):
        with trace_span(name, registry=registry) as span:
            ready.wait()
            seen[name] = current_span() is span

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {"t0": True, "t1": True}


def test_wrap_stage_times_each_call():
    registry = MetricsRegistry()

    def double(x):
        return x * 2

    wrapped = wrap_stage("stage.double", double, registry=registry)
    assert wrapped(21) == 42
    assert wrapped(2) == 4
    assert wrapped.__ps3_stage__ == "stage.double"
    assert registry.counter("stage.double.calls").value == 2
    assert registry.histogram("stage.double.wall_seconds").count == 2
