"""Property tests: batch executor == scalar executor, bit for bit.

The batch path must be a drop-in for the scalar per-partition loop at
full floating-point identity — same group keys, in the same order, with
byte-identical component vectors — for arbitrary tables, partitionings,
predicate trees, multi-column group-bys, and SUM/COUNT/AVG mixes,
including all-filtered partitions and partitions whose every row
survives. A final end-to-end check trains the picker under both paths
and requires identical selections.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.picker import PickerConfig, PS3Picker
from repro.core.training import TrainingConfig, train_picker_model
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.executor import compute_partition_answers
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table

SCHEMA = Schema.of(
    Column("v", ColumnKind.NUMERIC),
    Column("w", ColumnKind.NUMERIC),
    Column("t", ColumnKind.DATE),
    Column("g", ColumnKind.CATEGORICAL, low_cardinality=True),
    Column("s", ColumnKind.CATEGORICAL),
)


@st.composite
def tables(draw):
    n = draw(st.integers(4, 150))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "v": rng.normal(0, 100, n).round(2),
            "w": rng.exponential(10, n).round(2),
            "t": rng.integers(0, 30, n),
            "g": rng.choice(["a", "b", "c", "d", "e"], n),
            "s": rng.choice([f"s{i:02d}" for i in range(12)], n),
        },
    )


def _leaves():
    return st.sampled_from(
        [
            Comparison("v", ">", 0.0),
            Comparison("v", "<=", 25.0),
            Comparison("w", "<", 10.0),
            Comparison("t", ">=", 10.0),
            Comparison("t", "==", 7.0),
            InSet("g", {"a", "c"}),
            InSet("g", {"e"}),
            Contains("s", "s0"),
            Contains("s", "1"),
        ]
    )


@st.composite
def predicates(draw):
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return draw(_leaves())
    children = draw(st.lists(_leaves(), min_size=1, max_size=3))
    if shape == 1:
        return And(children)
    if shape == 2:
        return Or(children)
    return Not(draw(_leaves()))


@st.composite
def queries(draw):
    aggregates = draw(
        st.lists(
            st.sampled_from(
                [
                    sum_of(col("v")),
                    sum_of(col("w")),
                    avg_of(col("w")),
                    avg_of(col("v")),
                    count_star(),
                    sum_of(col("v") + col("w")),
                    sum_of(col("v") * 2.0 - 1.0),
                ]
            ),
            min_size=1,
            max_size=4,
        )
    )
    predicate = draw(st.one_of(st.none(), predicates()))
    group_by = draw(
        st.sampled_from(
            [(), ("g",), ("t",), ("g", "t"), ("t", "g"), ("v",), ("g", "s", "t")]
        )
    )
    return Query(aggregates, predicate, group_by)


def assert_bitwise_equal(batch, scalar):
    """Same per-partition dicts: key order and vector bytes identical."""
    assert len(batch) == len(scalar)
    for b, s in zip(batch, scalar):
        assert list(b.keys()) == list(s.keys())
        for key in s:
            assert b[key].tobytes() == s[key].tobytes(), (key, b[key], s[key])


@pytest.mark.slow
class TestBatchScalarParity:
    @given(tables(), queries(), st.integers(1, 10))
    @settings(max_examples=120, deadline=None)
    def test_bitwise_parity(self, table, query, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        assert_bitwise_equal(
            compute_partition_answers(ptable, query, batched=True),
            compute_partition_answers(ptable, query, batched=False),
        )

    @given(tables(), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_all_rows_filtered(self, table, num_partitions):
        """A predicate nothing satisfies: every answer dict is empty."""
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        query = Query(
            [sum_of(col("v")), count_star()],
            Comparison("w", "<", -1.0),  # w is exponential: impossible
            ("g",),
        )
        batch = compute_partition_answers(ptable, query, batched=True)
        assert batch == [{} for __ in range(num_partitions)]
        assert_bitwise_equal(
            batch, compute_partition_answers(ptable, query, batched=False)
        )

    @given(tables(), queries())
    @settings(max_examples=40, deadline=None)
    def test_empty_partition_answers(self, table, query):
        """Partitions whose rows are all filtered out yield empty dicts."""
        ptable = partition_evenly(table, min(6, table.num_rows))
        batch = compute_partition_answers(ptable, query, batched=True)
        scalar = compute_partition_answers(ptable, query, batched=False)
        assert [not b for b in batch] == [not s for s in scalar]
        assert_bitwise_equal(batch, scalar)


class TestEndToEndPickerParity:
    """Training on batch vs scalar answers must yield identical pickers."""

    def _train_queries(self):
        return [
            Query(
                [sum_of(col("x")), count_star()],
                Comparison("x", ">", 5.0),
                ("cat",),
            ),
            Query([avg_of(col("y"))], InSet("cat", {"a", "b"}), ("cat",)),
            Query([count_star()], Comparison("d", "<", 50.0), ("d",)),
            Query(
                [sum_of(col("y"))],
                Or([Comparison("y", ">", 2.0), InSet("cat", {"c"})]),
            ),
            Query([sum_of(col("x"))], None, ("cat", "d")),
        ]

    @pytest.mark.slow
    def test_identical_models_and_selections(
        self, tiny_ptable, tiny_stats, tiny_feature_builder
    ):
        config = TrainingConfig(num_models=3, gbrt_trees=8, seed=2)
        queries = self._train_queries()
        batch_model, batch_data = train_picker_model(
            tiny_ptable, tiny_feature_builder, queries, config, batched=True
        )
        scalar_model, scalar_data = train_picker_model(
            tiny_ptable, tiny_feature_builder, queries, config, batched=False
        )
        for ba, sa in zip(batch_data.answers, scalar_data.answers):
            assert_bitwise_equal(ba, sa)
        for bc, sc in zip(batch_data.contributions, scalar_data.contributions):
            assert bc.tobytes() == sc.tobytes()
        assert batch_model.thresholds.tobytes() == scalar_model.thresholds.tobytes()

        batch_picker = PS3Picker(batch_model, tiny_stats, PickerConfig(seed=0))
        scalar_picker = PS3Picker(scalar_model, tiny_stats, PickerConfig(seed=0))
        for query in queries:
            for budget in (2, 4, 7):
                assert (
                    batch_picker.select(query, budget).selection
                    == scalar_picker.select(query, budget).selection
                )
