"""Property tests: block estimation plane == dict oracle, bit for bit.

Random (table, query, selection) triples — including zero-match
predicates, partial selections that miss groups, and weight-scaled
selections that blow spurious groups up — must produce identical
combined totals, finalized answers, and :class:`ErrorReport` values
through :class:`BlockEstimator` and through the ``combiner.estimate`` /
``evaluate_errors`` dict walk. Reports are compared with ``==`` (no
tolerance); totals with ``np.array_equal`` (exact floats, the two IEEE
zeros identified).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import evaluate_errors
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.block_estimator import (
    BlockEstimator,
    selection_grid_scorer,
    selection_scorer,
)
from repro.engine.combiner import WeightedChoice, estimate
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, InSet, Not, Or
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.engine.workload_executor import WorkloadExecutor

SCHEMA = Schema.of(
    Column("v", ColumnKind.NUMERIC),
    Column("w", ColumnKind.NUMERIC),
    Column("t", ColumnKind.DATE),
    Column("g", ColumnKind.CATEGORICAL, low_cardinality=True),
)


@st.composite
def tables(draw):
    n = draw(st.integers(4, 80))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "v": rng.normal(0, 50, n).round(2),
            "w": rng.exponential(5, n).round(2),
            "t": rng.integers(0, 12, n),
            "g": rng.choice(["a", "b", "c", "d"], n),
        },
    )


_LEAVES = [
    Comparison("v", ">", 0.0),
    Comparison("w", "<", 5.0),
    Comparison("t", ">=", 6.0),
    InSet("g", {"a", "c"}),
    # Matches nothing: the zero-match / empty-truth corner.
    Comparison("v", ">", 1e12),
]

_AGGREGATES = [
    sum_of(col("v")),
    avg_of(col("w")),
    avg_of(col("v")),
    count_star(),
    sum_of(col("v") + col("w")),
]

_GROUP_BYS = [(), ("g",), ("t",), ("g", "t"), ("v",)]


@st.composite
def queries(draw):
    aggregates = draw(
        st.lists(st.sampled_from(_AGGREGATES), min_size=1, max_size=3)
    )
    shape = draw(st.integers(0, 3))
    if shape == 0:
        predicate = None
    elif shape == 1:
        predicate = draw(st.sampled_from(_LEAVES))
    elif shape == 2:
        predicate = draw(
            st.builds(
                draw(st.sampled_from([And, Or])),
                st.lists(st.sampled_from(_LEAVES), min_size=1, max_size=3),
            )
        )
    else:
        predicate = Not(draw(st.sampled_from(_LEAVES)))
    return Query(aggregates, predicate, draw(st.sampled_from(_GROUP_BYS)))


@st.composite
def selections(draw, num_partitions):
    """0..n weighted choices; duplicates and large weights allowed."""
    size = draw(st.integers(0, num_partitions))
    parts = draw(
        st.lists(
            st.integers(0, num_partitions - 1), min_size=size, max_size=size
        )
    )
    weights = draw(
        st.lists(
            st.floats(0.0, 64.0, allow_nan=False), min_size=size, max_size=size
        )
    )
    return [WeightedChoice(p, w) for p, w in zip(parts, weights)]


@st.composite
def cases(draw):
    table = draw(tables())
    num_partitions = min(draw(st.integers(1, 8)), table.num_rows)
    ptable = partition_evenly(table, num_partitions)
    query = draw(queries())
    selection = draw(selections(num_partitions))
    return ptable, query, selection


@pytest.mark.slow
class TestBlockDictParity:
    @given(cases())
    @settings(max_examples=150, deadline=None)
    def test_estimate_bitwise(self, case):
        ptable, query, selection = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        estimator = BlockEstimator.from_matrix(matrix, 0)
        values, present = estimator.estimate(selection)
        reference = estimate(query, matrix.answers(0), selection)
        final = estimator.as_final_answer(values, present)
        assert set(final) == set(reference)
        for key in reference:
            assert np.array_equal(final[key], reference[key]), key

    @given(cases())
    @settings(max_examples=150, deadline=None)
    def test_score_identical_reports(self, case):
        ptable, query, selection = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        estimator = BlockEstimator.from_matrix(matrix, 0)
        answers = matrix.answers(0)
        truth = estimate(
            query,
            answers,
            [WeightedChoice(p, 1.0) for p in range(ptable.num_partitions)],
        )
        block_report = estimator.score(selection)
        dict_report = evaluate_errors(truth, estimate(query, answers, selection))
        assert block_report == dict_report

    @given(cases(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_subset_truth_missed_and_spurious(self, case, data):
        """Score against a truth from a different selection: groups can
        be missing from the truth (spurious, weight-scaled) or from the
        estimate (missed); the report must still match the dict path."""
        ptable, query, selection = case
        truth_selection = data.draw(selections(ptable.num_partitions))
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        estimator = BlockEstimator.from_matrix(matrix, 0)
        answers = matrix.answers(0)
        block_report = estimator.score(
            selection, truth=estimator.estimate(truth_selection)
        )
        dict_report = evaluate_errors(
            estimate(query, answers, truth_selection),
            estimate(query, answers, selection),
        )
        assert block_report == dict_report

    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_scorer_paths_agree(self, case):
        ptable, query, selection = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        answers = matrix.answers(0)
        reports = {
            path: selection_scorer(query, answers, path)(selection)
            for path in ("auto", "block", "dict")
        }
        assert reports["auto"] == reports["block"] == reports["dict"]

    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_from_answers_scores_like_from_block(self, case):
        ptable, query, selection = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        from_block = BlockEstimator.from_matrix(matrix, 0)
        from_dicts = BlockEstimator.from_answers(query, list(matrix.answers(0)))
        assert from_dicts.score(selection) == from_block.score(selection)


@st.composite
def grid_cases(draw):
    """A table, a query, and a whole grid of candidate selections."""
    table = draw(tables())
    num_partitions = min(draw(st.integers(1, 8)), table.num_rows)
    ptable = partition_evenly(table, num_partitions)
    query = draw(queries())
    grid = draw(st.lists(selections(num_partitions), min_size=0, max_size=6))
    return ptable, query, grid


@pytest.mark.slow
class TestGridParity:
    """The fused candidate grid vs candidate-at-a-time, bit for bit."""

    @given(grid_cases())
    @settings(max_examples=120, deadline=None)
    def test_estimate_grid_rows_bitwise(self, case):
        ptable, query, grid = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        estimator = BlockEstimator.from_matrix(matrix, 0)
        values, present = estimator.estimate_grid(grid)
        for k, selection in enumerate(grid):
            ref_values, ref_present = estimator.estimate(selection)
            assert np.array_equal(present[k], ref_present), k
            assert np.array_equal(values[k], ref_values), k

    @given(grid_cases())
    @settings(max_examples=120, deadline=None)
    def test_score_grid_identical_reports_on_every_path(self, case):
        ptable, query, grid = case
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix([query])
        answers = matrix.answers(0)
        per_candidate = [
            selection_scorer(query, answers, "block")(s) for s in grid
        ]
        for path in ("auto", "block", "dict"):
            reports = selection_grid_scorer(query, answers, path)(grid)
            assert reports == per_candidate, path
