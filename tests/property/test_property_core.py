"""Property-based tests for core picker invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.allocation import allocate_samples
from repro.core.cluster_sampler import cluster_sample
from repro.core.contribution import partition_contributions
from repro.core.labels import labels_for_query


class TestAllocationProperties:
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=8),
        st.integers(0, 200),
        st.floats(1.0, 8.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_budget_and_caps_always_hold(self, sizes, budget, alpha):
        counts = allocate_samples(sizes, budget, alpha)
        assert len(counts) == len(sizes)
        assert all(0 <= c <= s for c, s in zip(counts, sizes))
        assert sum(counts) == min(budget, sum(sizes))

    @given(
        st.lists(st.integers(1, 50), min_size=2, max_size=6),
        st.floats(1.5, 6.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_rates_non_decreasing_with_importance(self, sizes, alpha):
        budget = max(1, sum(sizes) // 3)
        counts = allocate_samples(sizes, budget, alpha)
        rates = [c / s for c, s in zip(counts, sizes)]
        # Up to integer rounding (1 sample slack), rates must not drop as
        # importance rises.
        for less, more in zip(rates, rates[1:]):
            assert more >= less - 1.0 / min(sizes)


class TestLabelProperties:
    @given(
        arrays(
            np.float64,
            st.integers(2, 60),
            elements=st.floats(0, 1, allow_nan=False),
        ),
        st.floats(0.0, 0.99),
    )
    @settings(max_examples=120, deadline=None)
    def test_signs_match_threshold(self, contributions, threshold):
        labels = labels_for_query(contributions, threshold)
        positive = contributions > threshold
        assert np.all(labels[positive] > 0) or not positive.any()
        assert np.all(labels[~positive] <= 0)

    @given(
        arrays(
            np.float64,
            st.integers(2, 60),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_squared_mass_balanced(self, contributions):
        labels = labels_for_query(contributions, threshold=0.5)
        positives = labels[labels > 0]
        negatives = labels[labels < 0]
        if positives.size and negatives.size:
            # Each side's total squared mass is c = 1 (Algorithm 4).
            assert np.sum(positives**2) == 1.0 or np.isclose(
                np.sum(positives**2), 1.0
            )
            assert np.isclose(np.sum(negatives**2), 1.0)


class TestContributionProperties:
    @given(st.integers(1, 10), st.integers(1, 5), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_contributions_bounded(self, num_partitions, num_groups, seed):
        rng = np.random.default_rng(seed)
        answers = []
        for __ in range(num_partitions):
            answer = {}
            for g in range(num_groups):
                if rng.random() < 0.7:
                    answer[(f"g{g}",)] = rng.uniform(0, 10, 2)
            answers.append(answer)
        contributions = partition_contributions(answers)
        assert contributions.shape == (num_partitions,)
        assert np.all((contributions >= 0.0) & (contributions <= 1.0))

    @given(st.integers(2, 8), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_sole_owner_has_contribution_one(self, num_partitions, seed):
        rng = np.random.default_rng(seed)
        answers = [dict() for __ in range(num_partitions)]
        owner = int(rng.integers(num_partitions))
        answers[owner][("solo",)] = np.array([rng.uniform(1, 5)])
        contributions = partition_contributions(answers)
        assert contributions[owner] == 1.0


class TestClusterSampleProperties:
    @given(
        st.integers(2, 30),
        st.integers(1, 12),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_weights_always_cover_candidates(self, num_candidates, budget, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(num_candidates, 4))
        candidates = np.arange(num_candidates)
        selection = cluster_sample(matrix, candidates, budget, seed=seed % 1000)
        assert sum(c.weight for c in selection) == float(num_candidates)
        assert len(selection) == min(budget, num_candidates)
        partitions = [c.partition for c in selection]
        assert len(partitions) == len(set(partitions))
