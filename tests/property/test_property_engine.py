"""Property-based tests for engine invariants.

Core soundness property of the whole system: per-partition answers always
sum to the whole-table answer, for arbitrary data, partitionings, and
queries in scope.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.combiner import WeightedChoice, estimate, finalize_answer
from repro.engine.executor import compute_partition_answers, true_answer
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import Comparison, InSet
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table

SCHEMA = Schema.of(
    Column("v", ColumnKind.NUMERIC),
    Column("w", ColumnKind.NUMERIC),
    Column("g", ColumnKind.CATEGORICAL),
)


@st.composite
def tables(draw):
    n = draw(st.integers(4, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "v": rng.normal(0, 100, n).round(2),
            "w": rng.exponential(10, n).round(2),
            "g": rng.choice(["a", "b", "c", "d", "e"], n),
        },
    )


@st.composite
def queries(draw):
    aggregates = draw(
        st.lists(
            st.sampled_from(
                [
                    sum_of(col("v")),
                    avg_of(col("w")),
                    count_star(),
                    sum_of(col("v") + col("w")),
                ]
            ),
            min_size=1,
            max_size=3,
        )
    )
    predicate = draw(
        st.sampled_from(
            [
                None,
                Comparison("v", ">", 0.0),
                Comparison("w", "<", 10.0),
                InSet("g", {"a", "c"}),
            ]
        )
    )
    group_by = draw(st.sampled_from([(), ("g",)]))
    return Query(aggregates, predicate, group_by)


class TestPartitionAdditivity:
    @given(tables(), queries(), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_unit_weights_reproduce_truth(self, table, query, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        answers = compute_partition_answers(ptable, query)
        combined = estimate(
            query,
            answers,
            [WeightedChoice(p, 1.0) for p in range(num_partitions)],
        )
        exact = finalize_answer(query, true_answer(ptable, query))
        assert set(combined) == set(exact)
        for key in exact:
            np.testing.assert_allclose(
                combined[key], exact[key], rtol=1e-9, atol=1e-9
            )

    @given(tables(), queries())
    @settings(max_examples=50, deadline=None)
    def test_partitioning_invariance(self, table, query):
        """The exact answer is invariant to how rows are partitioned."""
        coarse = partition_evenly(table, 1)
        fine = partition_evenly(table, min(7, table.num_rows))
        coarse_answers = compute_partition_answers(coarse, query)
        fine_answers = compute_partition_answers(fine, query)
        coarse_total = estimate(
            query, coarse_answers, [WeightedChoice(0, 1.0)]
        )
        fine_total = estimate(
            query,
            fine_answers,
            [WeightedChoice(p, 1.0) for p in range(fine.num_partitions)],
        )
        assert set(coarse_total) == set(fine_total)
        for key in coarse_total:
            np.testing.assert_allclose(
                coarse_total[key], fine_total[key], rtol=1e-9, atol=1e-9
            )

    @given(tables(), st.floats(0.5, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_weights_scale_linear_components(self, table, weight):
        query = Query([sum_of(col("v")), count_star()])
        ptable = partition_evenly(table, 1)
        answers = compute_partition_answers(ptable, query)
        scaled = estimate(query, answers, [WeightedChoice(0, weight)])
        unit = estimate(query, answers, [WeightedChoice(0, 1.0)])
        if unit:
            np.testing.assert_allclose(scaled[()], weight * unit[()])
