"""Property tests: the vectorized predicate plan equals the scalar oracle.

The batch path (`PredicatePlan` over a `ColumnarSketchIndex`) replaces
the per-partition `estimate_selectivity` loop in the picker's hot path,
so it must reproduce the scalar estimator's five selectivity features on
arbitrary data and arbitrary in-scope predicates. Hypothesis drives
random tables, partitionings, and predicate trees — including
same-column comparison merging, conflicting equalities, NOT/AND/OR
nesting, IN sets with absent values, and substring filters on both
dictionary-backed and heavy-hitter-backed columns — and asserts
agreement within 1e-12.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.sketches.builder import SketchConfig, build_dataset_statistics
from repro.sketches.columnar import ColumnarSketchIndex
from repro.stats.plan import PredicatePlan
from repro.stats.selectivity import estimate_selectivity

SCHEMA = Schema.of(
    Column("num", ColumnKind.NUMERIC),
    Column("day", ColumnKind.DATE),
    Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
    Column("tag", ColumnKind.CATEGORICAL),  # high-cardinality: no dictionary
)

_CATS = ["alpha", "beta", "gamma", "delta"]
_TAGS = [f"t{i:03d}" for i in range(40)]


@st.composite
def tables(draw):
    n = draw(st.integers(8, 150))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "num": rng.normal(0, 10, n).round(1),
            "day": rng.integers(0, 30, n),
            "cat": rng.choice(_CATS, n),
            "tag": rng.choice(_TAGS, n),
        },
    )


@st.composite
def clauses(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return Comparison("num", op, draw(st.floats(-25, 25)))
    if kind == 1:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=="]))
        return Comparison("day", op, draw(st.integers(-5, 35)))
    if kind == 2:
        values = draw(st.sets(st.sampled_from(_CATS + ["missing"]), min_size=1))
        return InSet("cat", values)
    if kind == 3:
        values = draw(st.sets(st.sampled_from(_TAGS + ["zzz"]), min_size=1))
        return InSet("tag", values)
    if kind == 4:
        column = draw(st.sampled_from(["cat", "tag"]))
        text = draw(st.sampled_from(["al", "a", "zz", "et", "t0", "t01"]))
        return Contains(column, text)
    return Not(draw(clauses_simple()))


@st.composite
def clauses_simple(draw):
    op = draw(st.sampled_from(["<", ">", "=="]))
    return Comparison("num", op, draw(st.floats(-25, 25)))


@st.composite
def same_column_group(draw):
    """AND children that exercise joint-interval merging and conflicts."""
    column = draw(st.sampled_from(["num", "day"]))
    count = draw(st.integers(2, 3))
    out = []
    for __ in range(count):
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=="]))
        value = (
            draw(st.floats(-25, 25))
            if column == "num"
            else float(draw(st.integers(-5, 35)))
        )
        out.append(Comparison(column, op, value))
    return out


@st.composite
def predicates(draw):
    depth = draw(st.integers(0, 2))
    if depth == 0:
        return draw(clauses())
    if depth == 1:
        children = draw(st.lists(clauses(), min_size=2, max_size=4))
        if draw(st.booleans()):
            children = children + draw(same_column_group())
        connective = draw(st.sampled_from([And, Or]))
        return connective(children)
    inner = draw(st.lists(predicates_shallow(), min_size=2, max_size=3))
    connective = draw(st.sampled_from([And, Or]))
    node = connective(inner)
    return Not(node) if draw(st.booleans()) else node


@st.composite
def predicates_shallow(draw):
    children = draw(st.lists(clauses(), min_size=1, max_size=3))
    connective = draw(st.sampled_from([And, Or]))
    return connective(children)


def _scalar_matrix(predicate, dataset) -> np.ndarray:
    return np.array(
        [
            estimate_selectivity(predicate, pstats).as_tuple()
            for pstats in dataset.partitions
        ]
    )


class TestPlanMatchesScalarOracle:
    @given(tables(), predicates(), st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_plan_equals_scalar_estimator(self, table, predicate, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        dataset = build_dataset_statistics(
            ptable, SketchConfig(histogram_buckets=4, akmv_k=8, exact_dict_limit=8)
        )
        index = ColumnarSketchIndex.build(dataset)
        batch = PredicatePlan.compile(predicate).evaluate(index)
        scalar = _scalar_matrix(predicate, dataset)
        np.testing.assert_allclose(batch, scalar, rtol=0.0, atol=1e-12)

    @given(tables(), predicates())
    @settings(max_examples=60, deadline=None)
    def test_plan_features_bounded_and_ordered(self, table, predicate):
        ptable = partition_evenly(table, 3)
        dataset = build_dataset_statistics(ptable)
        index = ColumnarSketchIndex.build(dataset)
        batch = PredicatePlan.compile(predicate).evaluate(index)
        assert np.all((batch >= 0.0) & (batch <= 1.0))
        assert np.all(batch[:, 1] <= batch[:, 0] + 1e-9)  # lower <= upper
        assert np.all(batch[:, 3] <= batch[:, 4] + 1e-9)  # min <= max

    @given(tables(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_conflicting_equalities_and_tautologies(self, table, num_partitions):
        ptable = partition_evenly(table, min(num_partitions, table.num_rows))
        dataset = build_dataset_statistics(ptable)
        index = ColumnarSketchIndex.build(dataset)
        conflict = And(
            [Comparison("num", "==", 1.0), Comparison("num", "==", 2.0)]
        )
        batch = PredicatePlan.compile(conflict).evaluate(index)
        assert np.all(batch[:, 0] == 0.0)  # upper: no row can satisfy both
        tautology = Or(
            [Comparison("num", "<", 1e6), Comparison("num", ">=", 1e6)]
        )
        batch = PredicatePlan.compile(tautology).evaluate(index)
        np.testing.assert_allclose(
            batch, _scalar_matrix(tautology, dataset), rtol=0.0, atol=1e-12
        )
