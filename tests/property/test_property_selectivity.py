"""Property-based tests for selectivity estimation soundness.

The picker silently drops partitions with ``selectivity_upper == 0``, so
that feature must have *perfect recall* against arbitrary data and
arbitrary in-scope predicates — the single most safety-critical invariant
in the system. Hypothesis drives random tables, partitionings, and
predicate trees against it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.sketches.builder import SketchConfig, build_partition_statistics
from repro.stats.selectivity import estimate_selectivity

SCHEMA = Schema.of(
    Column("num", ColumnKind.NUMERIC),
    Column("day", ColumnKind.DATE),
    Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
)

_CATS = ["alpha", "beta", "gamma", "delta"]


@st.composite
def tables(draw):
    n = draw(st.integers(8, 150))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "num": rng.normal(0, 10, n).round(1),
            "day": rng.integers(0, 30, n),
            "cat": rng.choice(_CATS, n),
        },
    )


@st.composite
def clauses(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return Comparison("num", op, draw(st.floats(-25, 25)))
    if kind == 1:
        op = draw(st.sampled_from(["<", "<=", ">", ">="]))
        return Comparison("day", op, draw(st.integers(-5, 35)))
    if kind == 2:
        values = draw(st.sets(st.sampled_from(_CATS + ["missing"]), min_size=1))
        return InSet("cat", values)
    if kind == 3:
        return Contains("cat", draw(st.sampled_from(["al", "a", "zz", "et"])))
    return Not(draw(clauses_simple()))


@st.composite
def clauses_simple(draw):
    op = draw(st.sampled_from(["<", ">", "=="]))
    return Comparison("num", op, draw(st.floats(-25, 25)))


@st.composite
def predicates(draw):
    depth = draw(st.integers(0, 1))
    if depth == 0:
        return draw(clauses())
    children = draw(st.lists(clauses(), min_size=2, max_size=4))
    connective = draw(st.sampled_from([And, Or]))
    return connective(children)


class TestSelectivitySoundness:
    @given(tables(), predicates(), st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_perfect_recall_of_upper(self, table, predicate, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        for partition in ptable:
            truth = float(predicate.mask(partition.columns).mean())
            stats = build_partition_statistics(
                partition, SketchConfig(histogram_buckets=4, akmv_k=8)
            )
            estimate = estimate_selectivity(predicate, stats)
            if truth > 0.0:
                assert estimate.upper > 0.0, (
                    f"recall violated: {predicate.label()} has true "
                    f"selectivity {truth} but upper == 0"
                )

    @given(tables(), predicates())
    @settings(max_examples=120, deadline=None)
    def test_features_bounded_and_ordered(self, table, predicate):
        ptable = partition_evenly(table, 1)
        stats = build_partition_statistics(ptable[0])
        estimate = estimate_selectivity(predicate, stats)
        for value in estimate.as_tuple():
            assert 0.0 <= value <= 1.0
        assert estimate.lower <= estimate.upper + 1e-9
        assert estimate.clause_min <= estimate.clause_max + 1e-9

    @given(tables(), clauses())
    @settings(max_examples=100, deadline=None)
    def test_single_clause_estimate_near_truth(self, table, clause):
        """Leaf estimates track truth within coarse histogram error."""
        ptable = partition_evenly(table, 1)
        stats = build_partition_statistics(ptable[0])
        truth = float(clause.mask(ptable[0].columns).mean())
        estimate = estimate_selectivity(clause, stats)
        assert abs(estimate.indep - truth) <= 0.45

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_tautology_and_contradiction(self, table):
        ptable = partition_evenly(table, 1)
        stats = build_partition_statistics(ptable[0])
        tautology = Or([Comparison("num", "<", 1e6), Comparison("num", ">=", 1e6)])
        assert estimate_selectivity(tautology, stats).upper > 0.99
        contradiction = And(
            [Comparison("num", "<", -1e6), Comparison("num", ">", 1e6)]
        )
        assert estimate_selectivity(contradiction, stats).upper == 0.0
