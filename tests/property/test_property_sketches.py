"""Property-based tests for sketch invariants (hypothesis).

The sketches underpin every selectivity and feature computation, so their
invariants are checked against arbitrary inputs: moments match numpy,
merges commute with concatenation, histograms stay monotone with exact
bucket totals, AKMV never loses multiplicity mass, and serialization
round-trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sketches.akmv import AKMVSketch
from repro.sketches.heavy_hitter import HeavyHitterSketch
from repro.sketches.histogram import EquiDepthHistogram
from repro.sketches.measures import MeasuresSketch

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
float_arrays = arrays(np.float64, st.integers(1, 300), elements=finite_floats)
string_arrays = st.lists(
    st.sampled_from([f"v{i}" for i in range(30)]), min_size=1, max_size=300
).map(np.array)


class TestMeasuresProperties:
    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_moments_match_numpy(self, values):
        sketch = MeasuresSketch()
        sketch.update(values)
        assert np.isclose(sketch.mean, values.mean(), rtol=1e-9, atol=1e-9)
        assert sketch.min_value() == values.min()
        assert sketch.max_value() == values.max()
        assert sketch.std >= 0.0

    @given(float_arrays, float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes_with_concat(self, left, right):
        merged = MeasuresSketch()
        merged.update(left)
        other = MeasuresSketch()
        other.update(right)
        merged.merge(other)
        bulk = MeasuresSketch()
        bulk.update(np.concatenate([left, right]))
        assert np.isclose(merged.mean, bulk.mean, rtol=1e-9, atol=1e-9)
        assert merged.count == bulk.count
        assert merged.min_value() == bulk.min_value()

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip(self, values):
        sketch = MeasuresSketch()
        sketch.update(values)
        restored = MeasuresSketch.from_bytes(sketch.to_bytes())
        assert restored.count == sketch.count
        assert np.isclose(restored.total, sketch.total)


class TestHistogramProperties:
    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_depths_account_for_every_row(self, values):
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.depths.sum() == len(values)
        assert hist.distincts.sum() == len(np.unique(values))

    @given(float_arrays, finite_floats, finite_floats)
    @settings(max_examples=80, deadline=None)
    def test_fraction_leq_monotone(self, values, a, b):
        hist = EquiDepthHistogram.build(values, buckets=10)
        low, high = min(a, b), max(a, b)
        assert hist.fraction_leq(low) <= hist.fraction_leq(high) + 1e-12

    @given(float_arrays, finite_floats)
    @settings(max_examples=80, deadline=None)
    def test_fractions_bounded(self, values, probe):
        hist = EquiDepthHistogram.build(values, buckets=10)
        for fraction in (
            hist.fraction_leq(probe),
            hist.fraction_eq(probe),
            hist.fraction_lt(probe),
        ):
            assert 0.0 <= fraction <= 1.0

    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_present_value_has_positive_eq(self, values):
        """Perfect recall: a value that exists must never score zero."""
        hist = EquiDepthHistogram.build(values, buckets=10)
        probe = float(values[0])
        assert hist.fraction_eq(probe) > 0.0

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, values):
        hist = EquiDepthHistogram.build(values, buckets=10)
        restored = EquiDepthHistogram.from_bytes(hist.to_bytes())
        np.testing.assert_array_equal(restored.depths, hist.depths)
        np.testing.assert_allclose(restored.edges, hist.edges)


class TestAKMVProperties:
    @given(string_arrays)
    @settings(max_examples=60, deadline=None)
    def test_exact_below_k(self, values):
        sketch = AKMVSketch.build(values, k=64)
        true_distinct = len(np.unique(values))
        if true_distinct < 64:
            assert sketch.distinct_estimate() == float(true_distinct)

    @given(string_arrays)
    @settings(max_examples=60, deadline=None)
    def test_tracked_mass_never_exceeds_input(self, values):
        sketch = AKMVSketch.build(values, k=8)
        assert sketch.counts.sum() <= len(values)

    @given(string_arrays, string_arrays)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_bulk(self, left, right):
        merged = AKMVSketch.build(left, k=32)
        merged.merge(AKMVSketch.build(right, k=32))
        bulk = AKMVSketch.build(np.concatenate([left, right]), k=32)
        np.testing.assert_array_equal(merged.hashes, bulk.hashes)
        np.testing.assert_array_equal(merged.counts, bulk.counts)


class TestHeavyHitterProperties:
    @given(string_arrays)
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_at_support(self, values):
        """Lossy counting must report every value above support."""
        sketch = HeavyHitterSketch.build(values, support=0.1)
        uniques, counts = np.unique(values, return_counts=True)
        for value, count in zip(uniques, counts):
            if count / len(values) >= 0.1:
                assert str(value) in {str(k) for k in sketch.items()}

    @given(string_arrays)
    @settings(max_examples=60, deadline=None)
    def test_counts_never_overreport(self, values):
        sketch = HeavyHitterSketch.build(values, support=0.05)
        uniques, counts = np.unique(values, return_counts=True)
        true_counts = {str(v): int(c) for v, c in zip(uniques, counts)}
        for value, estimated in sketch.items().items():
            assert estimated <= true_counts[str(value)] + 1e-9
