"""Property-based round-trip tests for the SQL renderer/parser pair.

Random workload-generated queries are rendered to SQL, parsed back, and
checked for *semantic* equivalence: identical answers on the underlying
table. This exercises the parser against the full space of queries the
system actually generates, not just hand-picked strings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import execute_on_table
from repro.engine.sql import parse_query, render_sql
from repro.workload.generator import QueryGenerator


@pytest.fixture(scope="module")
def generator_factory(tpch_ptable, tpch_workload):
    def make(seed: int) -> QueryGenerator:
        return QueryGenerator(tpch_workload, tpch_ptable.table, seed=seed)

    return make, tpch_ptable.table


class TestSQLRoundTrip:
    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_semantic_roundtrip(self, generator_factory, seed):
        make, table = generator_factory
        query = make(seed).sample_query()
        sql = render_sql(query)
        reparsed = parse_query(sql, table.schema)

        original = execute_on_table(table, query)
        roundtripped = execute_on_table(table, reparsed)
        assert set(original) == set(roundtripped), sql
        for key in original:
            np.testing.assert_allclose(
                original[key], roundtripped[key], rtol=1e-9, atol=1e-9
            )

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_structural_roundtrip(self, generator_factory, seed):
        """Group-bys and aggregate counts survive exactly; the predicate
        reparses to an equivalent tree (same mask everywhere)."""
        make, table = generator_factory
        query = make(seed).sample_query()
        reparsed = parse_query(render_sql(query), table.schema)
        assert reparsed.group_by == query.group_by
        assert len(reparsed.aggregates) == len(query.aggregates)
        if query.predicate is None:
            assert reparsed.predicate is None
        else:
            original_mask = query.predicate.mask(table.columns)
            reparsed_mask = reparsed.predicate.mask(table.columns)
            np.testing.assert_array_equal(original_mask, reparsed_mask)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_rendered_sql_is_stable(self, generator_factory, seed):
        """render(parse(render(q))) == render(q) — rendering normalizes."""
        make, table = generator_factory
        query = make(seed).sample_query()
        once = render_sql(query)
        twice = render_sql(parse_query(once, table.schema))
        assert once == twice
