"""Property tests: workload executor == per-query batch executor, bit for bit.

Random multi-query workloads are drawn with *deliberately overlapping*
predicates and group-bys (leaves and grouping tuples come from small
pools, so masks, factorizations, and whole queries repeat across the
workload — exactly the redundancy the executor's sharing exploits). For
every workload:

* each query's lazy ``AnswerMatrix`` view must equal the per-query
  :class:`BatchExecutor` answers at full floating-point identity (which
  PR 2's suite already ties to the scalar oracle);
* plan/mask/factorization dedup must be *invisible*: answering the
  workload through one shared executor and answering each query through
  a fresh executor must give identical bits, regardless of how much
  sharing the workload triggered;
* array-path contributions must match the dict-walk reference;
* duplicate queries must alias equal answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contribution import partition_contributions
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.batch_executor import BatchExecutor
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.engine.workload_executor import WorkloadExecutor

SCHEMA = Schema.of(
    Column("v", ColumnKind.NUMERIC),
    Column("w", ColumnKind.NUMERIC),
    Column("t", ColumnKind.DATE),
    Column("g", ColumnKind.CATEGORICAL, low_cardinality=True),
    Column("s", ColumnKind.CATEGORICAL),
)


@st.composite
def tables(draw):
    n = draw(st.integers(4, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return Table(
        SCHEMA,
        {
            "v": rng.normal(0, 100, n).round(2),
            "w": rng.exponential(10, n).round(2),
            "t": rng.integers(0, 20, n),
            "g": rng.choice(["a", "b", "c", "d", "e"], n),
            "s": rng.choice([f"s{i:02d}" for i in range(10)], n),
        },
    )


#: Small pools on purpose: drawing from them makes leaves, predicates,
#: and group-bys collide across the workload's queries.
_LEAVES = [
    Comparison("v", ">", 0.0),
    Comparison("v", "<=", 25.0),
    Comparison("w", "<", 10.0),
    Comparison("t", ">=", 10.0),
    Comparison("t", "==", 7.0),
    InSet("g", {"a", "c"}),
    InSet("g", {"e"}),
    Contains("s", "s0"),
]

_AGGREGATES = [
    sum_of(col("v")),
    sum_of(col("w")),
    avg_of(col("w")),
    avg_of(col("v")),
    count_star(),
    sum_of(col("v") + col("w")),
    sum_of(col("v") * 2.0 - 1.0),
]

_GROUP_BYS = [(), ("g",), ("t",), ("g", "t"), ("t", "g"), ("v",), ("g", "s")]


@st.composite
def predicates(draw):
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return draw(st.sampled_from(_LEAVES))
    children = draw(st.lists(st.sampled_from(_LEAVES), min_size=1, max_size=3))
    if shape == 1:
        return And(children)
    if shape == 2:
        return Or(children)
    return Not(draw(st.sampled_from(_LEAVES)))


@st.composite
def queries(draw):
    aggregates = draw(
        st.lists(st.sampled_from(_AGGREGATES), min_size=1, max_size=3)
    )
    predicate = draw(st.one_of(st.none(), predicates()))
    group_by = draw(st.sampled_from(_GROUP_BYS))
    return Query(aggregates, predicate, group_by)


@st.composite
def workloads(draw):
    """2..8 queries, with a chance of literal duplicates appended."""
    base = draw(st.lists(queries(), min_size=2, max_size=6))
    duplicates = draw(
        st.lists(st.sampled_from(base), min_size=0, max_size=2)
    )
    return base + duplicates


def assert_bitwise_equal(actual, expected):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert list(a.keys()) == list(e.keys())
        for key in e:
            assert a[key].tobytes() == e[key].tobytes(), (key, a[key], e[key])


@pytest.mark.slow
class TestWorkloadBatchParity:
    @given(tables(), workloads(), st.integers(1, 8))
    @settings(max_examples=120, deadline=None)
    def test_matrix_equals_per_query_batch(self, table, workload, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix(workload)
        batch = BatchExecutor.for_table(ptable)
        for qi, query in enumerate(workload):
            assert_bitwise_equal(
                matrix.answers(qi), batch.partition_answers(query)
            )

    @given(tables(), workloads(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_dedup_invariant(self, table, workload, num_partitions):
        """Plan/mask/factorization sharing never changes any result."""
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        shared_executor = WorkloadExecutor(ptable)
        shared = shared_executor.answer_matrix(workload)
        # The pools guarantee overlap often enough for the dedup paths to
        # be genuinely exercised; when they fire they must be invisible.
        for qi, query in enumerate(workload):
            isolated = WorkloadExecutor(ptable).answer_matrix([query])
            assert_bitwise_equal(shared.answers(qi), isolated.answers(0))
            assert (
                shared.contributions(qi).tobytes()
                == isolated.contributions(0).tobytes()
            )

    @given(tables(), queries(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_queries_share_answers(self, table, query, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        executor = WorkloadExecutor(ptable)
        matrix = executor.answer_matrix([query, query, query])
        assert executor.query_dedup_hits == 2
        assert matrix.block(0) is matrix.block(1) is matrix.block(2)
        assert_bitwise_equal(
            matrix.answers(0),
            BatchExecutor.for_table(ptable).partition_answers(query),
        )

    @given(tables(), workloads(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_contributions_match_dict_walk(self, table, workload, num_partitions):
        num_partitions = min(num_partitions, table.num_rows)
        ptable = partition_evenly(table, num_partitions)
        matrix = WorkloadExecutor.for_table(ptable).answer_matrix(workload)
        batch = BatchExecutor.for_table(ptable)
        for qi, query in enumerate(workload):
            reference = partition_contributions(batch.partition_answers(query))
            assert matrix.contributions(qi).tobytes() == reference.tobytes()
