"""Unit tests for the AKMV distinct-value sketch."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketches.akmv import AKMVSketch


class TestExactRegime:
    def test_fewer_than_k_distinct_is_exact(self):
        values = np.array([f"v{i % 40}" for i in range(1000)])
        sketch = AKMVSketch.build(values, k=128)
        assert sketch.is_exact
        assert sketch.distinct_estimate() == 40.0

    def test_counts_track_multiplicity(self):
        values = np.array(["a"] * 7 + ["b"] * 3)
        sketch = AKMVSketch.build(values, k=16)
        assert sorted(sketch.counts.tolist()) == [3, 7]

    def test_empty_column(self):
        sketch = AKMVSketch.build(np.array([]), k=16)
        assert sketch.distinct_estimate() == 0.0
        assert sketch.freq_stats() == (0.0, 0.0, 0.0, 0.0)


class TestEstimationRegime:
    def test_estimate_accuracy(self):
        true_dv = 5000
        values = np.array([f"value{i}" for i in range(true_dv)])
        sketch = AKMVSketch.build(values, k=128)
        assert not sketch.is_exact
        estimate = sketch.distinct_estimate()
        assert abs(estimate - true_dv) / true_dv < 0.30  # k=128 KMV bound

    def test_numeric_values(self):
        values = np.random.default_rng(0).integers(0, 2000, 20_000).astype(float)
        sketch = AKMVSketch.build(values, k=128)
        estimate = sketch.distinct_estimate()
        assert abs(estimate - 2000) / 2000 < 0.30


class TestMerge:
    def test_merge_unions_multisets(self):
        left = AKMVSketch.build(np.array(["a", "b", "a"]), k=64)
        right = AKMVSketch.build(np.array(["b", "c"]), k=64)
        left.merge(right)
        assert left.distinct_estimate() == 3.0
        assert int(left.counts.sum()) == 5  # multiplicities added

    def test_merge_matches_bulk_estimate(self):
        values = np.array([f"u{i}" for i in range(3000)])
        bulk = AKMVSketch.build(values, k=128)
        left = AKMVSketch.build(values[:1500], k=128)
        right = AKMVSketch.build(values[1500:], k=128)
        left.merge(right)
        np.testing.assert_array_equal(left.hashes, bulk.hashes)


class TestFreqStats:
    def test_stats_shape(self):
        values = np.array(["a"] * 5 + ["b"] * 2 + ["c"])
        avg, mx, mn, total = AKMVSketch.build(values, k=16).freq_stats()
        assert (avg, mx, mn, total) == (pytest.approx(8 / 3), 5.0, 1.0, 8.0)


class TestValidationAndSerialization:
    def test_k_too_small_rejected(self):
        with pytest.raises(ConfigError):
            AKMVSketch(k=1)

    def test_roundtrip(self):
        sketch = AKMVSketch.build(np.array([f"r{i}" for i in range(500)]), k=64)
        restored = AKMVSketch.from_bytes(sketch.to_bytes())
        np.testing.assert_array_equal(restored.hashes, sketch.hashes)
        np.testing.assert_array_equal(restored.counts, sketch.counts)
        assert restored.k == 64

    def test_size_matches_encoding(self):
        sketch = AKMVSketch.build(np.array(["x", "y"]), k=16)
        assert sketch.size_bytes() == len(sketch.to_bytes())

    def test_corrupt_payload_rejected(self):
        sketch = AKMVSketch.build(np.array(["x"]), k=16)
        with pytest.raises(ConfigError):
            AKMVSketch.from_bytes(sketch.to_bytes()[:-3])
