"""Unit tests for the per-partition statistics builder."""

import pytest

from repro.sketches.builder import (
    SketchConfig,
    build_dataset_statistics,
    build_partition_statistics,
)


class TestPartitionStatistics:
    def test_numeric_column_gets_all_numeric_sketches(self, tiny_ptable):
        pstats = build_partition_statistics(tiny_ptable[0])
        cs = pstats.columns["x"]
        assert cs.measures is not None
        assert cs.histogram is not None and not cs.histogram.hashed
        assert cs.akmv is not None
        assert cs.heavy_hitter is not None
        assert cs.exact_dict is None

    def test_positive_column_tracks_log_measures(self, tiny_ptable):
        pstats = build_partition_statistics(tiny_ptable[0])
        assert pstats.columns["x"].measures.track_log
        assert not pstats.columns["y"].measures.track_log

    def test_categorical_column_gets_hashed_histogram(self, tiny_ptable):
        pstats = build_partition_statistics(tiny_ptable[0])
        cs = pstats.columns["cat"]
        assert cs.measures is None
        assert cs.histogram.hashed
        assert cs.exact_dict is not None  # declared low_cardinality

    def test_non_low_cardinality_has_no_dict(self, tiny_ptable):
        pstats = build_partition_statistics(tiny_ptable[0])
        assert pstats.columns["tag"].exact_dict is None

    def test_row_count_recorded(self, tiny_ptable):
        pstats = build_partition_statistics(tiny_ptable[3])
        assert pstats.num_rows == tiny_ptable[3].num_rows
        assert pstats.partition_index == 3


class TestStorageAccounting:
    def test_size_by_kind_sums_to_total(self, tiny_stats):
        for pstats in tiny_stats.partitions:
            breakdown = pstats.size_by_kind()
            assert sum(breakdown.values()) == pstats.size_bytes()

    def test_table1_complexity_measures_constant(self, tiny_ptable):
        """Paper Table 1: measures storage is O(1) regardless of rows."""
        small = build_partition_statistics(tiny_ptable[0])
        assert small.columns["x"].measures.size_bytes() < 128

    def test_table1_akmv_bounded_by_k(self, tiny_ptable):
        config = SketchConfig(akmv_k=16)
        pstats = build_partition_statistics(tiny_ptable[0], config)
        # header + 16 bytes per tracked value, at most k of them
        assert pstats.columns["tag"].akmv.size_bytes() <= 8 + 16 * 16

    def test_hh_bounded_by_support(self, tiny_stats):
        for pstats in tiny_stats.partitions:
            hh = pstats.columns["cat"].heavy_hitter
            assert len(hh.items()) <= int(1 / hh.support) + 1


class TestDatasetStatistics:
    def test_builds_every_partition(self, tiny_ptable, tiny_stats):
        assert tiny_stats.num_partitions == tiny_ptable.num_partitions

    def test_global_heavy_hitters_ranked(self, tiny_stats):
        hitters = tiny_stats.global_heavy_hitters["cat"]
        assert hitters[0] == "a"  # 55% of rows
        assert len(hitters) <= tiny_stats.config.bitmap_k

    def test_global_heavy_hitters_capped(self, tiny_ptable):
        config = SketchConfig(bitmap_k=2)
        stats = build_dataset_statistics(tiny_ptable, config)
        assert len(stats.global_heavy_hitters["cat"]) <= 2

    def test_average_size(self, tiny_stats):
        average = tiny_stats.average_partition_size_bytes()
        assert average > 0
        sizes = [p.size_bytes() for p in tiny_stats.partitions]
        assert average == pytest.approx(sum(sizes) / len(sizes))
