"""Differential suite: the vectorized sketch-build plane vs the scalar oracle.

``build_dataset_statistics(vectorized=True)`` (the default) must be
*bit-identical* to the per-partition constructor loop
(``vectorized=False``) — serialized sketch encodings, the raw
lossy-counting entry state (including deltas and insertion order, which
drive global-heavy-hitter merges), and the global heavy hitters all
compared exactly. The append path is pinned too: sealing partitions one
at a time and extending the columnar index must agree bit for bit with a
from-scratch vectorized build.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.layout import append_rows, partition_evenly, sort_table
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.sketches.builder import (
    SketchConfig,
    append_partition_statistics,
    build_dataset_statistics,
)
from repro.sketches.columnar import ColumnarSketchIndex

_SKETCH_FIELDS = ("measures", "histogram", "akmv", "heavy_hitter", "exact_dict")


def _values_identical(a, b) -> bool:
    """Equality that treats NaN as equal to itself (bitwise intent)."""
    return a == b or (a != a and b != b)


def assert_statistics_identical(expected, actual):
    """Bitwise comparison of two DatasetStatistics."""
    assert actual.num_partitions == expected.num_partitions
    assert set(actual.global_heavy_hitters) == set(expected.global_heavy_hitters)
    for name, hitters in expected.global_heavy_hitters.items():
        other = actual.global_heavy_hitters[name]
        assert len(other) == len(hitters), name
        assert all(map(_values_identical, hitters, other)), name
    for p in range(expected.num_partitions):
        pe, pa = expected.partitions[p], actual.partitions[p]
        assert pa.partition_index == pe.partition_index
        assert pa.num_rows == pe.num_rows
        assert list(pa.columns) == list(pe.columns)
        for name in pe.columns:
            ce, ca = pe.columns[name], pa.columns[name]
            for field in _SKETCH_FIELDS:
                se, sa = getattr(ce, field), getattr(ca, field)
                assert (se is None) == (sa is None), (p, name, field)
                if se is not None:
                    assert sa.to_bytes() == se.to_bytes(), (p, name, field)
            he, ha = ce.heavy_hitter, ca.heavy_hitter
            if he is not None:
                # Raw automaton state, not just the reported items: the
                # entry order and deltas feed the global-HH merge.
                actual_entries = [
                    (key, entry.count, entry.delta)
                    for key, entry in ha._entries.items()
                ]
                expected_entries = [
                    (key, entry.count, entry.delta)
                    for key, entry in he._entries.items()
                ]
                assert len(actual_entries) == len(expected_entries), (p, name)
                assert all(
                    _values_identical(x, y)
                    for a, e in zip(actual_entries, expected_entries)
                    for x, y in zip(a, e)
                ), (p, name)
                assert ha.total == he.total and ha._bucket == he._bucket


def assert_indexes_identical(expected, actual):
    """Bitwise comparison of two ColumnarSketchIndex array sets."""
    assert actual.num_partitions == expected.num_partitions
    assert set(actual.columns) == set(expected.columns)
    for name, column in expected.columns.items():
        other = actual.columns[name].array_state()
        for key, arr in column.array_state().items():
            assert arr.dtype == other[key].dtype, (name, key)
            np.testing.assert_array_equal(arr, other[key], err_msg=f"{name}.{key}")


@pytest.fixture(scope="module")
def skewed_table():
    schema = Schema.of(
        Column("x", ColumnKind.NUMERIC, positive=True),
        Column("y", ColumnKind.NUMERIC),
        Column("d", ColumnKind.DATE),
        Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
        Column("tag", ColumnKind.CATEGORICAL),
    )
    gen = np.random.default_rng(41)
    n = 900
    return Table(
        schema,
        {
            "x": gen.exponential(10.0, n) + 1.0,
            "y": gen.normal(0.0, 5.0, n),
            "d": gen.integers(0, 60, n),
            "cat": gen.choice(["a", "b", "c", "dd"], n, p=[0.6, 0.2, 0.15, 0.05]),
            "tag": gen.choice([f"t{i:03d}" for i in range(200)], n),
        },
    )


class TestVectorizedBuilderParity:
    def test_default_config(self, tiny_ptable):
        assert_statistics_identical(
            build_dataset_statistics(tiny_ptable, vectorized=False),
            build_dataset_statistics(tiny_ptable, vectorized=True),
        )

    @pytest.mark.parametrize("num_partitions", [1, 7, 12])
    def test_partitioning_shapes(self, skewed_table, num_partitions):
        ptable = partition_evenly(skewed_table, num_partitions)
        assert_statistics_identical(
            build_dataset_statistics(ptable, vectorized=False),
            build_dataset_statistics(ptable, vectorized=True),
        )

    @pytest.mark.parametrize(
        "config",
        [
            SketchConfig(histogram_buckets=1),
            SketchConfig(histogram_buckets=3, akmv_k=4, exact_dict_limit=3),
            # epsilon large enough that partitions exceed one lossy-counting
            # block: exercises the streaming fallback inside the batch plane.
            SketchConfig(hh_support=0.2, hh_epsilon=0.19),
        ],
        ids=["one-bucket", "tiny-caps", "hh-streaming-fallback"],
    )
    def test_config_corners(self, skewed_table, config):
        ptable = partition_evenly(sort_table(skewed_table, "d"), 9)
        assert_statistics_identical(
            build_dataset_statistics(ptable, config, vectorized=False),
            build_dataset_statistics(ptable, config, vectorized=True),
        )

    def test_degenerate_columns(self):
        """Constant columns, nonpositive 'positive' columns, lone values."""
        schema = Schema.of(
            Column("pos", ColumnKind.NUMERIC, positive=True),
            Column("const", ColumnKind.NUMERIC),
            Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
        )
        gen = np.random.default_rng(3)
        table = Table(
            schema,
            {
                # First partition positive, later ones not: the log channel
                # must disable per partition exactly like the scalar guard.
                "pos": np.concatenate([np.full(30, 5.0), gen.normal(0, 1, 30)]),
                "const": np.full(60, 3.25),
                "cat": np.array(["only"] * 30 + ["a", "b"] * 15),
            },
        )
        for parts in (1, 2, 4):
            ptable = partition_evenly(table, parts)
            assert_statistics_identical(
                build_dataset_statistics(ptable, vectorized=False),
                build_dataset_statistics(ptable, vectorized=True),
            )

    def test_nan_values_match_scalar_semantics(self):
        """NaN segments keep the scalar plane's odd-but-pinned behavior.

        The scalar ``update`` swallows NaN extrema (``min(inf, nan)``
        keeps ``inf``) and its nonpositive guard keeps the log channel
        *enabled* on NaN (moments go NaN, extrema keep defaults);
        ``reduceat`` would propagate NaN instead. Pinned bit for bit.
        """
        schema = Schema.of(
            Column("x", ColumnKind.NUMERIC),
            Column("pos", ColumnKind.NUMERIC, positive=True),
        )
        table = Table(
            schema,
            {
                "x": np.array([1.0, np.nan, 3.0, 4.0, 5.0, 6.0, np.nan, 8.0]),
                "pos": np.array([2.0, 3.0, np.nan, 4.0, 5.0, 6.0, 7.0, 8.0]),
            },
        )
        for parts in (1, 2, 4):
            ptable = partition_evenly(table, parts)
            assert_statistics_identical(
                build_dataset_statistics(ptable, vectorized=False),
                build_dataset_statistics(ptable, vectorized=True),
            )

    def test_bytes_dtype_categorical_matches_scalar(self):
        """'S'-dtype columns hash through the float-pack path, not utf-8.

        ``hash_value`` only treats ``str``/``np.str_`` as text; numpy
        bytes scalars fall through to ``struct.pack("<d", float(v))``.
        The batched hasher must follow the same rule (it used to crash
        on ``bytes.encode``).
        """
        schema = Schema.of(
            Column("b", ColumnKind.CATEGORICAL, low_cardinality=True)
        )
        values = np.array([b"1", b"2", b"1", b"3", b"2", b"1"])
        ptable = partition_evenly(Table(schema, {"b": values}), 3)
        assert_statistics_identical(
            build_dataset_statistics(ptable, vectorized=False),
            build_dataset_statistics(ptable, vectorized=True),
        )

    def test_nan_payload_diversity_matches_scalar(self):
        """NaNs with distinct bit payloads must survive per partition.

        np.unique collapses every NaN to one representative regardless
        of payload bits, while the scalar per-partition unique keeps
        each partition's own NaN — whose bits feed AKMV hashes and
        histogram edges. Such NaNs take the scalar path wholesale.
        """
        weird_nan = np.uint64(0xFFF8000000000001).view(np.float64)
        values = np.array(
            [weird_nan, 1.0, 2.0, np.nan, 3.0, 4.0, 5.0, weird_nan]
        )
        table = Table(
            Schema.of(Column("v", ColumnKind.NUMERIC)), {"v": values}
        )
        for parts in (1, 2, 4):
            ptable = partition_evenly(table, parts)
            assert_statistics_identical(
                build_dataset_statistics(ptable, vectorized=False),
                build_dataset_statistics(ptable, vectorized=True),
            )

    def test_negative_zero_matches_scalar(self):
        """-0.0 columns take the scalar path: the np.unique representative
        for a -0.0/0.0 run depends on sort internals, so the global
        segmented dedup cannot replay the per-partition pick (found by
        the hypothesis suite: a [-0.0, 0.0, ...] partition produced
        -0.0 histogram edges where the oracle produced 0.0)."""
        gen = np.random.default_rng(5)
        values = gen.choice([-0.0, 0.0, 1.5, -2.5], 113)
        table = Table(
            Schema.of(Column("v", ColumnKind.NUMERIC)), {"v": values}
        )
        for parts in (1, 3, 7):
            ptable = partition_evenly(table, parts)
            assert_statistics_identical(
                build_dataset_statistics(ptable, vectorized=False),
                build_dataset_statistics(ptable, vectorized=True),
            )

    def test_process_pool_matches_inline(self, tiny_ptable):
        assert_statistics_identical(
            build_dataset_statistics(tiny_ptable, vectorized=True),
            build_dataset_statistics(tiny_ptable, vectorized=True, n_jobs=2),
        )

    def test_columnar_index_identical(self, tiny_ptable):
        """The exported index is the same arrays under either plane."""
        scalar = build_dataset_statistics(tiny_ptable, vectorized=False)
        vector = build_dataset_statistics(tiny_ptable, vectorized=True)
        assert_indexes_identical(
            ColumnarSketchIndex.build(scalar), ColumnarSketchIndex.build(vector)
        )


class TestAppendThenBuildParity:
    """Incremental sealing must agree with a from-scratch build."""

    def _split(self, table, keep_rows: int, parts: int):
        prefix = Table(
            table.schema,
            {name: arr[:keep_rows] for name, arr in table.columns.items()},
        )
        tail = {name: arr[keep_rows:] for name, arr in table.columns.items()}
        return partition_evenly(prefix, parts), tail

    def test_appended_statistics_match_scratch(self, skewed_table):
        ptable, tail = self._split(skewed_table, 600, 6)
        stats = build_dataset_statistics(ptable)
        grown = append_rows(ptable, tail)
        append_partition_statistics(stats, grown[grown.num_partitions - 1])
        # From-scratch build over the grown table, with the same
        # partition boundaries (6 even prefix partitions + 1 appended).
        scratch = build_dataset_statistics(grown)
        # Global heavy hitters are deliberately frozen on append; compare
        # per-partition sketches only.
        assert stats.num_partitions == scratch.num_partitions
        for p in range(stats.num_partitions):
            for name in stats.partitions[p].columns:
                a = stats.partitions[p].columns[name]
                b = scratch.partitions[p].columns[name]
                for field in _SKETCH_FIELDS:
                    sa, sb = getattr(a, field), getattr(b, field)
                    assert (sa is None) == (sb is None)
                    if sa is not None:
                        assert sa.to_bytes() == sb.to_bytes(), (p, name, field)

    def test_extended_index_matches_scratch(self, skewed_table):
        ptable, tail = self._split(skewed_table, 600, 6)
        stats = build_dataset_statistics(ptable)
        index = ColumnarSketchIndex.build(stats)
        grown = append_rows(ptable, tail)
        append_partition_statistics(stats, grown[grown.num_partitions - 1])
        added = index.extend(stats)
        assert added == 1
        assert_indexes_identical(ColumnarSketchIndex.build(stats), index)

    def test_fused_view_extension_under_vectorized_builder(self, skewed_table):
        """The incremental fused view feeds the same build as a fresh one."""
        from repro.engine.batch_executor import fused_view

        ptable, tail = self._split(skewed_table, 600, 6)
        prior = fused_view(ptable)
        grown = append_rows(ptable, tail)
        view = fused_view(grown, prior=prior)
        assert view.num_partitions == 7
        np.testing.assert_array_equal(
            view.partition_ids,
            np.repeat(np.arange(7), np.diff(np.asarray(grown.boundaries))),
        )
        # Building through the (incrementally extended) cached view must
        # equal the scalar oracle on the grown table.
        assert_statistics_identical(
            build_dataset_statistics(grown, vectorized=False),
            build_dataset_statistics(grown, vectorized=True),
        )


_COLUMN_KIND = st.sampled_from(["numeric", "date", "categorical"])


@pytest.mark.slow
class TestVectorizedBuilderProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        num_rows=st.integers(min_value=2, max_value=120),
        num_partitions=st.integers(min_value=1, max_value=9),
        buckets=st.integers(min_value=1, max_value=12),
    )
    def test_random_tables_bit_identical(
        self, data, num_rows, num_partitions, buckets
    ):
        num_partitions = min(num_partitions, num_rows)
        kind = data.draw(_COLUMN_KIND, label="kind")
        if kind == "numeric":
            values = np.asarray(
                data.draw(
                    st.lists(
                        st.floats(
                            min_value=-1e6,
                            max_value=1e6,
                            allow_nan=False,
                            allow_infinity=False,
                        ),
                        min_size=num_rows,
                        max_size=num_rows,
                    ),
                    label="values",
                )
            )
            column = Column("v", ColumnKind.NUMERIC, positive=True)
        elif kind == "date":
            values = np.asarray(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=400),
                        min_size=num_rows,
                        max_size=num_rows,
                    ),
                    label="values",
                ),
                dtype=np.int64,
            )
            column = Column("v", ColumnKind.DATE)
        else:
            values = np.asarray(
                data.draw(
                    st.lists(
                        st.sampled_from(["a", "b", "cc", "ddd", "e!", ""]),
                        min_size=num_rows,
                        max_size=num_rows,
                    ),
                    label="values",
                )
            )
            column = Column("v", ColumnKind.CATEGORICAL, low_cardinality=True)
        table = Table(Schema.of(column), {"v": values})
        ptable = partition_evenly(table, num_partitions)
        config = SketchConfig(
            histogram_buckets=buckets, akmv_k=4, exact_dict_limit=4
        )
        assert_statistics_identical(
            build_dataset_statistics(ptable, config, vectorized=False),
            build_dataset_statistics(ptable, config, vectorized=True),
        )
