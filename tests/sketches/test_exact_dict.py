"""Unit tests for exact low-cardinality dictionaries."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketches.exact_dict import ExactDictionary


class TestExactCounts:
    def test_fraction_eq(self):
        values = np.array(["a"] * 6 + ["b"] * 4)
        dictionary = ExactDictionary.build(values)
        assert dictionary.fraction_eq("a") == 0.6
        assert dictionary.fraction_eq("b") == 0.4
        assert dictionary.fraction_eq("zzz") == 0.0

    def test_fraction_in(self):
        values = np.array(["a"] * 5 + ["b"] * 3 + ["c"] * 2)
        dictionary = ExactDictionary.build(values)
        assert dictionary.fraction_in({"a", "c"}) == pytest.approx(0.7)

    def test_fraction_containing(self):
        values = np.array(["promo_x", "promo_y", "plain", "promo_x"])
        dictionary = ExactDictionary.build(values)
        assert dictionary.fraction_containing("promo") == 0.75
        assert dictionary.fraction_containing("zzz") == 0.0

    def test_distinct_count(self):
        dictionary = ExactDictionary.build(np.array(["x", "y", "x"]))
        assert dictionary.distinct_count() == 2


class TestOverflow:
    def test_overflow_disables_dictionary(self):
        values = np.array([f"v{i}" for i in range(300)])
        dictionary = ExactDictionary.build(values, limit=256)
        assert dictionary.overflowed
        assert not dictionary.usable
        assert dictionary.fraction_eq("v0") == 0.0
        assert dictionary.distinct_count() == 0

    def test_merge_propagates_overflow(self):
        small = ExactDictionary.build(np.array(["a", "b"]))
        big = ExactDictionary.build(np.array([f"v{i}" for i in range(300)]))
        small.merge(big)
        assert small.overflowed

    def test_merge_adds_counts(self):
        left = ExactDictionary.build(np.array(["a", "a", "b"]))
        right = ExactDictionary.build(np.array(["a", "c"]))
        left.merge(right)
        assert left.counts == {"a": 3, "b": 1, "c": 1}
        assert left.total == 5


class TestValidationAndSerialization:
    def test_bad_limit_rejected(self):
        with pytest.raises(ConfigError):
            ExactDictionary(limit=0)

    def test_roundtrip(self):
        dictionary = ExactDictionary.build(np.array(["a", "b", "a"]))
        restored = ExactDictionary.from_bytes(dictionary.to_bytes())
        assert restored.counts == dictionary.counts
        assert restored.total == dictionary.total
        assert restored.overflowed == dictionary.overflowed

    def test_size_matches_encoding(self):
        dictionary = ExactDictionary.build(np.array(["alpha", "beta"]))
        assert dictionary.size_bytes() == len(dictionary.to_bytes())
