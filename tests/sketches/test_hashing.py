"""Unit tests for stable hashing."""

import numpy as np

from repro.sketches.hashing import hash_array, hash_value, normalize_hashes


class TestHashValue:
    def test_deterministic(self):
        assert hash_value("hello") == hash_value("hello")
        assert hash_value(1.5) == hash_value(1.5)

    def test_strings_and_floats_disagree(self):
        assert hash_value("1.5") != hash_value(1.5)

    def test_distinct_values_rarely_collide(self):
        hashes = {hash_value(f"v{i}") for i in range(10_000)}
        assert len(hashes) == 10_000

    def test_numpy_string_matches_python_string(self):
        assert hash_value(np.str_("abc")) == hash_value("abc")


class TestHashArray:
    def test_elementwise_consistency(self):
        values = np.array(["a", "b", "a", "c"])
        hashed = hash_array(values)
        assert hashed[0] == hashed[2]
        assert hashed[0] != hashed[1]
        assert hashed.dtype == np.uint64

    def test_numeric_arrays(self):
        values = np.array([1.0, 2.0, 1.0])
        hashed = hash_array(values)
        assert hashed[0] == hashed[2] != hashed[1]


class TestNormalize:
    def test_range(self):
        hashes = hash_array(np.array([f"x{i}" for i in range(1000)]))
        normalized = normalize_hashes(hashes)
        assert np.all((normalized >= 0.0) & (normalized < 1.0))

    def test_approximately_uniform(self):
        hashes = hash_array(np.array([f"x{i}" for i in range(20_000)]))
        normalized = normalize_hashes(hashes)
        # Mean of U(0,1) is 0.5; generous tolerance for 20k samples.
        assert abs(normalized.mean() - 0.5) < 0.02
