"""Unit tests for lossy-counting heavy hitters."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketches.heavy_hitter import HeavyHitterSketch


def skewed_values(n: int = 10_000, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # 'big' ~ 40%, 'mid' ~ 10%, the rest spread over 1000 rare values.
    return rng.choice(
        np.array(["big", "mid"] + [f"rare{i}" for i in range(1000)]),
        size=n,
        p=[0.4, 0.1] + [0.5 / 1000] * 1000,
    )


class TestDetection:
    def test_finds_true_heavy_hitters(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        found = sketch.frequencies()
        assert found["big"] == pytest.approx(0.4, abs=0.03)
        assert found["mid"] == pytest.approx(0.1, abs=0.03)

    def test_rare_values_not_reported(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        assert all(not str(v).startswith("rare") for v in sketch.items())

    def test_dictionary_bounded_by_support(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        assert len(sketch.items()) <= 100 + 1  # 1/support plus epsilon slack

    def test_undercount_bounded_by_epsilon(self):
        values = skewed_values()
        sketch = HeavyHitterSketch.build(values, support=0.01)
        true_count = int((values == "big").sum())
        estimated = sketch.items()["big"]
        assert estimated <= true_count
        assert true_count - estimated <= sketch.epsilon * len(values)

    def test_numeric_values_supported(self):
        values = np.array([1.0] * 500 + [2.0] * 400 + list(range(100)), dtype=float)
        sketch = HeavyHitterSketch.build(values, support=0.05)
        assert 1.0 in sketch.items() and 2.0 in sketch.items()

    def test_empty_input(self):
        sketch = HeavyHitterSketch(support=0.01)
        assert sketch.items() == {}
        assert sketch.stats() == (0.0, 0.0, 0.0)


class TestStats:
    def test_stats_tuple(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        count, avg, mx = sketch.stats()
        assert count == len(sketch.frequencies())
        assert 0.0 < avg <= mx
        assert mx == pytest.approx(0.4, abs=0.03)


class TestMerge:
    def test_merge_combines_counts(self):
        left = HeavyHitterSketch.build(skewed_values(seed=1), support=0.01)
        right = HeavyHitterSketch.build(skewed_values(seed=2), support=0.01)
        total_before = left.items()["big"] + right.items()["big"]
        left.merge(right)
        assert left.total == 20_000
        assert left.items()["big"] == pytest.approx(total_before, rel=0.05)


class TestValidationAndSerialization:
    def test_bad_support_rejected(self):
        with pytest.raises(ConfigError):
            HeavyHitterSketch(support=0.0)
        with pytest.raises(ConfigError):
            HeavyHitterSketch(support=1.5)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            HeavyHitterSketch(support=0.01, epsilon=0.5)

    def test_roundtrip(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        restored = HeavyHitterSketch.from_bytes(sketch.to_bytes())
        assert restored.items() == sketch.items()
        assert restored.total == sketch.total

    def test_size_matches_encoding(self):
        sketch = HeavyHitterSketch.build(skewed_values(), support=0.01)
        assert sketch.size_bytes() == len(sketch.to_bytes())
