"""Unit tests for equal-depth histograms."""

import numpy as np
import pytest

from repro.sketches.histogram import EquiDepthHistogram


@pytest.fixture
def uniform_hist():
    values = np.linspace(0.0, 100.0, 10_001)
    return EquiDepthHistogram.build(values, buckets=10)


class TestConstruction:
    def test_equal_depths_without_ties(self, uniform_hist):
        depths = uniform_hist.depths
        assert depths.sum() == 10_001
        # Ceil-target walk: all buckets within one target of each other,
        # with only the last bucket collecting the remainder.
        assert depths[:-1].max() - depths[:-1].min() <= 1
        assert depths[-1] <= depths[:-1].max()

    def test_ties_collapse_edges(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.num_buckets <= 2
        assert hist.depths.sum() == 100

    def test_empty_column(self):
        hist = EquiDepthHistogram.build(np.array([]), buckets=10)
        assert hist.total == 0
        assert hist.fraction_leq(5.0) == 0.0

    def test_single_value_column(self):
        hist = EquiDepthHistogram.build(np.full(50, 7.0), buckets=10)
        assert hist.fraction_eq(7.0) == pytest.approx(1.0)
        assert hist.fraction_leq(7.0) == 1.0
        assert hist.fraction_leq(6.9) == 0.0

    def test_string_histogram_over_hashes(self):
        values = np.array([f"s{i % 13}" for i in range(1000)])
        hist = EquiDepthHistogram.build_for_strings(values)
        assert hist.hashed
        assert hist.depths.sum() == 1000


class TestRangeEstimates:
    def test_fraction_leq_interpolates(self, uniform_hist):
        assert uniform_hist.fraction_leq(25.0) == pytest.approx(0.25, abs=0.01)
        assert uniform_hist.fraction_leq(75.0) == pytest.approx(0.75, abs=0.01)

    def test_boundaries(self, uniform_hist):
        assert uniform_hist.fraction_leq(-1.0) == 0.0
        assert uniform_hist.fraction_leq(1000.0) == 1.0

    def test_interval(self, uniform_hist):
        frac = uniform_hist.fraction_in_interval(20.0, 30.0)
        assert frac == pytest.approx(0.10, abs=0.01)

    def test_empty_interval(self, uniform_hist):
        assert uniform_hist.fraction_in_interval(30.0, 20.0) == 0.0

    def test_open_ended_intervals(self, uniform_hist):
        low = uniform_hist.fraction_in_interval(low=90.0)
        assert low == pytest.approx(0.10, abs=0.01)
        high = uniform_hist.fraction_in_interval(high=10.0)
        assert high == pytest.approx(0.10, abs=0.01)


class TestEqualityEstimates:
    def test_out_of_range_is_zero(self, uniform_hist):
        assert uniform_hist.fraction_eq(-5.0) == 0.0
        assert uniform_hist.fraction_eq(500.0) == 0.0

    def test_in_range_is_positive(self, uniform_hist):
        # Perfect recall: any value inside [min, max] must score > 0.
        assert uniform_hist.fraction_eq(42.0) > 0.0

    def test_estimate_close_to_true_frequency(self, uniform_hist):
        # 10001 equally frequent distinct values: truth is ~1e-4.
        assert uniform_hist.fraction_eq(42.0) == pytest.approx(1e-4, rel=0.5)

    def test_heavy_tie_value(self):
        values = np.array([5.0] * 900 + list(np.linspace(10, 20, 100)))
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.fraction_eq(5.0) == pytest.approx(0.9, abs=0.01)

    def test_heavy_minimum_degenerate_bucket(self):
        values = np.array([0.0] * 500 + list(np.linspace(1, 10, 500)))
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.fraction_eq(0.0) == pytest.approx(0.5, abs=0.01)
        assert hist.fraction_lt(0.0) == 0.0
        assert hist.fraction_leq(0.0) == pytest.approx(0.5, abs=0.01)

    def test_fraction_lt_removes_point_mass(self):
        values = np.array([5.0] * 900 + list(np.linspace(10, 20, 100)))
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.fraction_lt(5.0) == pytest.approx(0.0, abs=0.01)
        assert hist.fraction_leq(5.0) == pytest.approx(0.9, abs=0.01)


class TestSerialization:
    def test_roundtrip(self, uniform_hist):
        restored = EquiDepthHistogram.from_bytes(uniform_hist.to_bytes())
        np.testing.assert_allclose(restored.edges, uniform_hist.edges)
        np.testing.assert_array_equal(restored.depths, uniform_hist.depths)
        assert restored.total == uniform_hist.total

    def test_size_matches_encoding(self, uniform_hist):
        assert uniform_hist.size_bytes() == len(uniform_hist.to_bytes())
