"""Unit tests for the measures sketch."""

import numpy as np
import pytest

from repro.sketches.measures import MeasuresSketch


@pytest.fixture
def values():
    return np.random.default_rng(0).exponential(5.0, 1000) + 1.0


class TestBasicStats:
    def test_matches_numpy(self, values):
        sketch = MeasuresSketch()
        sketch.update(values)
        assert sketch.count == 1000
        assert sketch.mean == pytest.approx(values.mean())
        assert sketch.std == pytest.approx(values.std(), rel=1e-9)
        assert sketch.min_value() == values.min()
        assert sketch.max_value() == values.max()

    def test_incremental_updates_match_bulk(self, values):
        bulk = MeasuresSketch()
        bulk.update(values)
        incremental = MeasuresSketch()
        for chunk in np.array_split(values, 7):
            incremental.update(chunk)
        assert incremental.mean == pytest.approx(bulk.mean)
        assert incremental.std == pytest.approx(bulk.std)

    def test_empty_sketch_is_zero(self):
        sketch = MeasuresSketch()
        assert sketch.count == 0
        assert sketch.mean == 0.0
        assert sketch.std == 0.0
        assert sketch.min_value() == 0.0

    def test_empty_update_is_noop(self):
        sketch = MeasuresSketch()
        sketch.update(np.array([]))
        assert sketch.count == 0


class TestLogChannel:
    def test_log_measures(self, values):
        sketch = MeasuresSketch(track_log=True)
        sketch.update(values)
        logs = np.log(values)
        assert sketch.log_mean == pytest.approx(logs.mean())
        assert sketch.log_min_value() == pytest.approx(logs.min())
        assert sketch.log_max_value() == pytest.approx(logs.max())

    def test_log_channel_disabled_without_flag(self, values):
        sketch = MeasuresSketch()
        sketch.update(values)
        assert sketch.log_mean == 0.0

    def test_nonpositive_values_disable_log_channel(self):
        sketch = MeasuresSketch(track_log=True)
        sketch.update(np.array([1.0, -2.0, 3.0]))
        assert not sketch.track_log
        assert sketch.log_mean == 0.0


class TestMerge:
    def test_merge_equals_bulk(self, values):
        left, right = MeasuresSketch(track_log=True), MeasuresSketch(track_log=True)
        left.update(values[:500])
        right.update(values[500:])
        left.merge(right)
        bulk = MeasuresSketch(track_log=True)
        bulk.update(values)
        assert left.mean == pytest.approx(bulk.mean)
        assert left.std == pytest.approx(bulk.std)
        assert left.log_mean == pytest.approx(bulk.log_mean)

    def test_merge_disables_log_if_either_disabled(self, values):
        left = MeasuresSketch(track_log=True)
        right = MeasuresSketch(track_log=False)
        left.update(values[:10])
        right.update(values[10:20])
        left.merge(right)
        assert not left.track_log


class TestSerialization:
    def test_roundtrip(self, values):
        sketch = MeasuresSketch(track_log=True)
        sketch.update(values)
        restored = MeasuresSketch.from_bytes(sketch.to_bytes())
        assert restored.count == sketch.count
        assert restored.mean == pytest.approx(sketch.mean)
        assert restored.log_mean == pytest.approx(sketch.log_mean)
        assert restored.track_log == sketch.track_log

    def test_size_matches_encoding(self, values):
        sketch = MeasuresSketch()
        sketch.update(values)
        assert sketch.size_bytes() == len(sketch.to_bytes())


class TestBuildSegmentedNaN:
    """The batch constructor replays scalar NaN semantics on its own.

    The dataset builder routes NaN-bearing columns to the scalar
    constructors wholesale, but ``build_segmented`` is public API and
    guarantees parity for any input: NaN extrema are swallowed like
    scalar ``min(inf, nan)``, and the log channel stays enabled with
    NaN moments and untouched extrema defaults.
    """

    def test_nan_segments_match_scalar_update(self):
        values = np.array([1.0, np.nan, 3.0, 4.0, np.nan, 6.0, 7.0, 8.0])
        offsets = np.array([0, 2, 4, 8])
        for track_log in (False, True):
            batch = MeasuresSketch.build_segmented(
                values, offsets, track_log=track_log
            )
            for p in range(3):
                scalar = MeasuresSketch(track_log=track_log)
                scalar.update(values[offsets[p] : offsets[p + 1]])
                assert batch[p].to_bytes() == scalar.to_bytes(), (
                    p,
                    track_log,
                    vars(batch[p]),
                    vars(scalar),
                )
