"""Unit tests for occurrence bitmaps."""

import numpy as np

from repro.sketches.columnar import ColumnarSketchIndex
from repro.stats.bitmap import (
    bitmap_signature,
    occurrence_bitmap,
    occurrence_bitmaps,
    signature_matrix,
)


class TestOccurrenceBitmap:
    def test_bitmap_width_matches_global_hitters(self, tiny_stats):
        width = len(tiny_stats.global_heavy_hitters["cat"])
        bits = occurrence_bitmap(tiny_stats, 0, "cat")
        assert bits.shape == (width,)

    def test_bits_reflect_local_heavy_hitters(self, tiny_stats):
        global_hitters = tiny_stats.global_heavy_hitters["cat"]
        bits = occurrence_bitmap(tiny_stats, 2, "cat")
        local = set(tiny_stats.column_stats(2, "cat").heavy_hitter.items())
        for j, value in enumerate(global_hitters):
            assert bits[j] == (1.0 if value in local else 0.0)

    def test_matrix_stacks_partitions(self, tiny_stats):
        matrix = occurrence_bitmaps(tiny_stats, "cat")
        assert matrix.shape[0] == tiny_stats.num_partitions
        for p in range(tiny_stats.num_partitions):
            np.testing.assert_array_equal(
                matrix[p], occurrence_bitmap(tiny_stats, p, "cat")
            )

    def test_high_cardinality_column_has_sparse_bitmap(self, tiny_stats):
        # 'tag' has 300 distinct values in 100-row partitions: few heavy
        # hitters anywhere, so the bitmap is narrow and mostly zero.
        matrix = occurrence_bitmaps(tiny_stats, "tag")
        assert matrix.shape[1] <= tiny_stats.config.bitmap_k
        if matrix.size:
            assert matrix.mean() < 0.5


class TestSignature:
    def test_signature_concatenates_columns(self, tiny_stats):
        sig = bitmap_signature(tiny_stats, 0, ("cat", "tag"))
        w = len(tiny_stats.global_heavy_hitters["cat"]) + len(
            tiny_stats.global_heavy_hitters["tag"]
        )
        assert len(sig) == w
        assert all(bit in (0, 1) for bit in sig)

    def test_signature_hashable_and_stable(self, tiny_stats):
        first = bitmap_signature(tiny_stats, 1, ("cat",))
        second = bitmap_signature(tiny_stats, 1, ("cat",))
        assert first == second
        assert hash(first) == hash(second)


class TestSignatureMatrix:
    """The batched matrix must reproduce the scalar loop row for row."""

    def test_rows_match_scalar_signatures(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        for columns in (("cat",), ("tag",), ("cat", "tag"), ("tag", "cat")):
            matrix = signature_matrix(tiny_stats, columns, index)
            assert matrix.shape[0] == tiny_stats.num_partitions
            for p in range(tiny_stats.num_partitions):
                expected = bitmap_signature(tiny_stats, p, columns)
                assert tuple(int(b) for b in matrix[p]) == expected

    def test_no_columns_empty_matrix(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        matrix = signature_matrix(tiny_stats, (), index)
        assert matrix.shape == (tiny_stats.num_partitions, 0)
