"""Unit tests for the feature schema and builder (paper Table 2)."""

import numpy as np
import pytest

from repro.engine.aggregates import count_star, sum_of
from repro.engine.expressions import col
from repro.engine.predicates import Comparison, InSet
from repro.engine.query import Query
from repro.stats.features import NUM_SELECTIVITY, NUM_STATS, FeatureSchema


class TestFeatureSchema:
    def test_dimension_formula(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        num_columns = len(schema.columns)
        bitmap_bits = sum(schema.bitmap_widths.values())
        assert schema.dimension == (
            num_columns * NUM_STATS + bitmap_bits + NUM_SELECTIVITY
        )

    def test_selectivity_upper_is_first_selectivity_slot(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        info = schema.features[schema.selectivity_upper_index]
        assert info.name == "selectivity_upper"

    def test_every_feature_categorized(self, tiny_feature_builder):
        categories = {"measure", "dv", "hh", "selectivity"}
        for info in tiny_feature_builder.schema.features:
            assert info.category in categories

    def test_families_cover_paper_listing(self, tiny_feature_builder):
        families = set(tiny_feature_builder.schema.families())
        # Algorithm 3's feature list (Appendix B.1).
        for expected in (
            "x", "x2", "std", "min(x)", "max(x)",
            "log(x)", "log2(x)", "min(log(x))", "max(log(x))",
            "# dv", "avg dv", "max dv", "min dv", "sum dv",
            "# hh", "avg hh", "max hh", "hh bitmap",
            "selectivity_upper",
        ):
            assert expected in families, expected

    def test_family_indices_partition_features(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        counted = sum(
            len(schema.family_indices(f)) for f in schema.families()
        )
        assert counted == schema.dimension


class TestStaticFeatures:
    def test_categorical_columns_have_zero_measures(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        static = tiny_feature_builder.static_matrix
        block = schema.stat_slice("cat")
        measures = static[:, block][:, :9]  # first 9 stats are measures
        assert np.all(measures == 0.0)

    def test_numeric_stats_match_sketches(self, tiny_feature_builder, tiny_stats):
        schema = tiny_feature_builder.schema
        static = tiny_feature_builder.static_matrix
        block = schema.stat_slice("x")
        sketch = tiny_stats.column_stats(3, "x").measures
        assert static[3, block.start] == pytest.approx(sketch.mean)
        assert static[3, block.start + 4] == pytest.approx(sketch.max_value())

    def test_bitmap_block_is_binary(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        static = tiny_feature_builder.static_matrix
        block = schema.bitmap_slice("cat")
        bits = static[:, block]
        assert np.all((bits == 0.0) | (bits == 1.0))


class TestQueryMasking:
    def test_unused_columns_zeroed(self, tiny_feature_builder):
        query = Query([sum_of(col("x"))], Comparison("x", ">", 0.0))
        features = tiny_feature_builder.features_for_query(query)
        schema = features.schema
        assert np.all(features.matrix[:, schema.stat_slice("y")] == 0.0)
        assert np.any(features.matrix[:, schema.stat_slice("x")] != 0.0)

    def test_bitmaps_only_for_groupby_columns(self, tiny_feature_builder):
        no_group = tiny_feature_builder.features_for_query(
            Query([count_star()], InSet("cat", {"a"}))
        )
        schema = no_group.schema
        assert np.all(no_group.matrix[:, schema.bitmap_slice("cat")] == 0.0)
        grouped = tiny_feature_builder.features_for_query(
            Query([count_star()], group_by=("cat",))
        )
        assert np.any(grouped.matrix[:, schema.bitmap_slice("cat")] != 0.0)

    def test_selectivity_features_always_present(self, tiny_feature_builder):
        query = Query([count_star()])
        features = tiny_feature_builder.features_for_query(query)
        sel = features.matrix[:, features.schema.selectivity_slice()]
        assert np.all(sel == 1.0)  # no predicate -> selectivity 1 everywhere

    def test_passing_partitions_filters(self, tiny_feature_builder, tiny_ptable):
        # d < 0 matches nothing anywhere.
        query = Query([count_star()], Comparison("d", "<", -1.0))
        features = tiny_feature_builder.features_for_query(query)
        assert features.passing_partitions().size == 0
        # d < 10 matches only early partitions under the d-sorted layout.
        query = Query([count_star()], Comparison("d", "<", 10.0))
        features = tiny_feature_builder.features_for_query(query)
        passing = features.passing_partitions()
        assert 0 < passing.size < tiny_ptable.num_partitions

    def test_same_schema_across_queries(self, tiny_feature_builder):
        q1 = tiny_feature_builder.features_for_query(Query([count_star()]))
        q2 = tiny_feature_builder.features_for_query(
            Query([sum_of(col("x"))], group_by=("cat",))
        )
        assert q1.matrix.shape == q2.matrix.shape


class TestFeatureSchemaStandalone:
    def test_bitmap_slice_width(self):
        schema = FeatureSchema(
            columns=("a",), groupby_columns=("a",), bitmap_widths={"a": 3}
        )
        block = schema.bitmap_slice("a")
        assert block.stop - block.start == 3

    def test_zero_width_bitmap(self):
        schema = FeatureSchema(
            columns=("a",), groupby_columns=("a",), bitmap_widths={"a": 0}
        )
        block = schema.bitmap_slice("a")
        assert block.stop == block.start
