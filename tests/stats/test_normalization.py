"""Unit tests for feature normalization (paper Appendix B.1)."""

import numpy as np
import pytest

from repro.engine.aggregates import count_star
from repro.engine.query import Query
from repro.errors import NotFittedError
from repro.stats.normalization import Normalizer


@pytest.fixture
def fitted(tiny_feature_builder):
    queries = [Query([count_star()], group_by=("cat",))]
    matrices = [
        tiny_feature_builder.features_for_query(q).matrix for q in queries
    ]
    normalizer = Normalizer(tiny_feature_builder.schema)
    normalizer.fit(matrices)
    return normalizer, matrices


class TestNormalizer:
    def test_transform_before_fit_raises(self, tiny_feature_builder):
        normalizer = Normalizer(tiny_feature_builder.schema)
        with pytest.raises(NotFittedError):
            normalizer.transform(np.zeros((2, tiny_feature_builder.schema.dimension)))

    def test_average_magnitude_near_one(self, fitted):
        normalizer, matrices = fitted
        transformed = normalizer.transform(matrices[0])
        magnitudes = np.abs(transformed)
        nonzero = magnitudes[:, magnitudes.any(axis=0)]
        # Scaling by the training average puts feature means at ~1.
        assert np.abs(nonzero.mean(axis=0) - 1.0).max() < 1e-6

    def test_zero_features_stay_zero(self, fitted):
        normalizer, matrices = fitted
        transformed = normalizer.transform(matrices[0])
        zero_cols = ~matrices[0].any(axis=0)
        assert np.all(transformed[:, zero_cols] == 0.0)

    def test_negative_values_keep_sign(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        matrix = np.zeros((4, schema.dimension))
        block = schema.stat_slice("y")
        matrix[:, block.start] = [-10.0, -5.0, 5.0, 10.0]
        normalizer = Normalizer(schema).fit([matrix])
        transformed = normalizer.transform(matrix)
        column = transformed[:, block.start]
        assert column[0] < 0 < column[3]

    def test_selectivity_gets_cube_root(self, tiny_feature_builder):
        schema = tiny_feature_builder.schema
        matrix = np.zeros((2, schema.dimension))
        sel = schema.selectivity_slice()
        matrix[:, sel] = 0.125
        normalizer = Normalizer(schema).fit([matrix])
        transformed = normalizer.transform(matrix)
        # cbrt(0.125)=0.5 then scaled by its own mean (0.5) -> 1.0
        assert transformed[0, sel.start] == pytest.approx(1.0)

    def test_fit_transform_matches_separate_calls(self, tiny_feature_builder):
        queries = [Query([count_star()])]
        matrices = [
            tiny_feature_builder.features_for_query(q).matrix for q in queries
        ]
        normalizer = Normalizer(tiny_feature_builder.schema)
        combined = normalizer.fit_transform([m.copy() for m in matrices])
        expected = normalizer.transform(matrices[0])
        np.testing.assert_allclose(combined[0], expected)
