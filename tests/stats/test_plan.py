"""Unit tests for the vectorized feature plane.

Covers the compile-once plan + columnar index against the scalar oracle
on fixed queries, the FeatureBuilder rewiring (plan cache, vectorized /
scalar toggle), incremental refresh after appends, the index-backed
occurrence bitmaps, and the sketch-level frequency caches.
"""

import numpy as np
import pytest

from repro.engine.aggregates import count_star, sum_of
from repro.engine.expressions import col
from repro.engine.layout import partition_evenly, sort_table
from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.engine.query import Query
from repro.errors import QueryScopeError
from repro.sketches.builder import (
    append_partition_statistics,
    build_dataset_statistics,
)
from repro.sketches.columnar import ColumnarSketchIndex
from repro.sketches.exact_dict import ExactDictionary
from repro.sketches.heavy_hitter import HeavyHitterSketch
from repro.stats.bitmap import occurrence_bitmaps
from repro.stats.features import FeatureBuilder
from repro.stats.plan import PredicatePlan

PREDICATES = (
    None,
    Comparison("x", ">", 5.0),
    Comparison("d", "!=", 10.0),
    And([Comparison("x", ">", 2.0), Comparison("x", "<", 30.0)]),
    And([Comparison("x", "==", 5.0), Comparison("x", "==", 6.0)]),
    Or([Comparison("y", "<", -5.0), Comparison("y", ">", 5.0)]),
    InSet("cat", {"a", "dd", "missing"}),
    InSet("tag", {"t001", "t250"}),
    Contains("cat", "d"),
    Contains("tag", "t0"),
    Not(And([Comparison("x", ">", 1.0), InSet("cat", {"b"})])),
)


class TestPlanAgainstScalar:
    @pytest.mark.parametrize("predicate", PREDICATES, ids=str)
    def test_features_match_scalar_path(self, tiny_feature_builder, predicate):
        query = Query([count_star()], predicate)
        vectorized = tiny_feature_builder.features_for_query(query, vectorized=True)
        scalar = tiny_feature_builder.features_for_query(query, vectorized=False)
        np.testing.assert_allclose(
            vectorized.matrix, scalar.matrix, rtol=0.0, atol=1e-12
        )

    def test_no_predicate_yields_full_selectivity(self, tiny_feature_builder):
        features = tiny_feature_builder.features_for_query(Query([count_star()]))
        sel = features.matrix[:, features.schema.selectivity_slice()]
        assert np.all(sel == 1.0)

    def test_unknown_column_raises(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        plan = PredicatePlan.compile(Comparison("nope", ">", 1.0))
        with pytest.raises(QueryScopeError, match="nope"):
            plan.evaluate(index)

    def test_plan_is_compiled_once_per_predicate(self, tiny_feature_builder):
        predicate = Comparison("x", ">", 3.0)
        first = tiny_feature_builder._plan_for(predicate)
        again = tiny_feature_builder._plan_for(predicate)
        assert first is again

    def test_plan_ops_are_partition_count_independent(self):
        predicate = And(
            [Comparison("x", ">", 1.0), Comparison("x", "<", 9.0), InSet("cat", {"a"})]
        )
        plan = PredicatePlan.compile(predicate)
        # One joint interval + one InSet leaf + the AND combiner.
        assert plan.num_ops == 3


class TestIndexBackedStatics:
    def test_occurrence_matrix_matches_bitmaps(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        for name in ("cat", "d"):
            hitters = tiny_stats.global_heavy_hitters.get(name, ())
            expected = occurrence_bitmaps(tiny_stats, name)
            np.testing.assert_array_equal(
                index.columns[name].occurrence_matrix(hitters), expected
            )

    def test_static_block_matches_column_stats(self, tiny_feature_builder, tiny_stats):
        index = tiny_feature_builder.sketch_index
        assert index.num_partitions == tiny_stats.num_partitions
        block = tiny_feature_builder.schema.stat_slice("x")
        np.testing.assert_array_equal(
            tiny_feature_builder.static_matrix[:, block],
            index.columns["x"].stats,
        )


class TestIncrementalRefresh:
    @pytest.fixture
    def growable(self, tiny_table):
        ptable = partition_evenly(sort_table(tiny_table, "d"), 8)
        dataset = build_dataset_statistics(ptable)
        builder = FeatureBuilder(dataset, ("cat", "d"))
        return ptable, dataset, builder

    def test_refresh_appends_rows_only(self, growable, tiny_table):
        ptable, dataset, builder = growable
        before = builder.static_matrix.copy()
        extra = partition_evenly(tiny_table, 12)
        for source in (extra[0], extra[5]):
            append_partition_statistics(dataset, source)
        builder.refresh()
        assert builder.static_matrix.shape[0] == before.shape[0] + 2
        np.testing.assert_array_equal(
            builder.static_matrix[: before.shape[0]], before
        )
        # The appended rows must match what a from-scratch builder computes.
        fresh = FeatureBuilder(dataset, ("cat", "d"))
        np.testing.assert_allclose(
            builder.static_matrix, fresh.static_matrix, rtol=0.0, atol=1e-12
        )

    def test_selectivity_covers_appended_partitions(self, growable, tiny_table):
        ptable, dataset, builder = growable
        append_partition_statistics(dataset, partition_evenly(tiny_table, 12)[3])
        builder.refresh()
        query = Query([sum_of(col("x"))], Comparison("x", ">", 0.0))
        vectorized = builder.features_for_query(query, vectorized=True)
        scalar = builder.features_for_query(query, vectorized=False)
        assert vectorized.matrix.shape[0] == dataset.num_partitions
        np.testing.assert_allclose(
            vectorized.matrix, scalar.matrix, rtol=0.0, atol=1e-12
        )

    def test_refresh_without_appends_is_a_noop(self, growable):
        __, ___, builder = growable
        static = builder.static_matrix
        builder.refresh()
        assert builder.static_matrix is static

    def test_refresh_detects_wholesale_replacement(self, growable, tiny_table):
        __, dataset, builder = growable
        replaced = build_dataset_statistics(
            partition_evenly(sort_table(tiny_table, "x"), len(dataset.partitions))
        )
        dataset.partitions[:] = replaced.partitions  # same count, new sketches
        builder.refresh()
        fresh = FeatureBuilder(dataset, ("cat", "d"))
        np.testing.assert_allclose(
            builder.static_matrix, fresh.static_matrix, rtol=0.0, atol=1e-12
        )


class TestSketchCaches:
    def test_heavy_hitter_frequencies_cached_and_invalidated(self):
        sketch = HeavyHitterSketch.build(
            np.array(["a"] * 60 + ["b"] * 30 + ["c"] * 10), support=0.05
        )
        first = sketch.frequencies()
        assert sketch.frequencies() is first
        sketch.update(np.array(["b"] * 40))
        assert sketch.frequencies() is not first
        assert sketch.frequencies()["b"] == pytest.approx(0.5)

    def test_heavy_hitter_merge_invalidates(self):
        left = HeavyHitterSketch.build(np.array(["a"] * 50), support=0.05)
        right = HeavyHitterSketch.build(np.array(["b"] * 50), support=0.05)
        stale = left.frequencies()
        left.merge(right)
        assert left.frequencies() is not stale
        assert left.frequencies()["a"] == pytest.approx(0.5)

    def test_exact_dict_fractions_cached_and_invalidated(self):
        dictionary = ExactDictionary.build(np.array(["x"] * 3 + ["y"] * 1))
        first = dictionary.fractions()
        assert dictionary.fractions() is first
        assert dictionary.fraction_eq("x") == pytest.approx(0.75)
        dictionary.update(np.array(["y"] * 4))
        assert dictionary.fractions() is not first
        assert dictionary.fraction_eq("y") == pytest.approx(5 / 8)
