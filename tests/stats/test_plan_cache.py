"""Shared compiled-plan cache across FeatureBuilder instances."""

import numpy as np

from repro.engine.aggregates import count_star
from repro.engine.layout import partition_evenly
from repro.engine.predicates import And, Comparison, InSet
from repro.engine.query import Query
from repro.engine.schema import Column, ColumnKind, Schema
from repro.engine.table import Table
from repro.sketches.builder import build_dataset_statistics
from repro.stats.features import FeatureBuilder
from repro.stats.plan import SHARED_PLAN_CACHE, PlanCache

PREDICATE = And([Comparison("x", ">", 3.0), InSet("cat", {"a"})])


def _other_stats():
    """A second, differently-shaped dataset sharing the column names."""
    schema = Schema.of(
        Column("x", ColumnKind.NUMERIC),
        Column("cat", ColumnKind.CATEGORICAL, low_cardinality=True),
    )
    rng = np.random.default_rng(31)
    n = 400
    table = Table(
        schema,
        {"x": rng.normal(5.0, 2.0, n), "cat": rng.choice(["a", "b"], n)},
    )
    return build_dataset_statistics(partition_evenly(table, 8))


class TestPlanCacheSharing:
    def test_second_builder_hits_instead_of_recompiling(self, tiny_stats):
        cache = PlanCache()
        query = Query([count_star()], PREDICATE)
        first = FeatureBuilder(tiny_stats, ("cat",), plan_cache=cache)
        first.features_for_query(query)
        assert cache.misses == 1 and cache.hits == 0
        # A different builder over the same workload: pure cache hits.
        second = FeatureBuilder(tiny_stats, ("cat", "d"), plan_cache=cache)
        second.features_for_query(query)
        assert cache.misses == 1 and cache.hits == 1
        second.features_for_query(query)
        assert cache.misses == 1 and cache.hits == 2

    def test_shared_default_cache(self, tiny_stats):
        builder = FeatureBuilder(tiny_stats, ("cat",))
        assert builder.plan_cache is SHARED_PLAN_CACHE

    def test_plans_are_dataset_independent(self, tiny_stats):
        """One cached plan serves two datasets with correct per-dataset output."""
        cache = PlanCache()
        query = Query([count_star()], PREDICATE)
        tiny_builder = FeatureBuilder(tiny_stats, ("cat",), plan_cache=cache)
        other_builder = FeatureBuilder(_other_stats(), ("cat",), plan_cache=cache)
        tiny_vec = tiny_builder.features_for_query(query)
        other_vec = other_builder.features_for_query(query)
        assert cache.misses == 1 and cache.hits == 1
        # Each builder still evaluated against its own sketch index, and
        # matches its scalar estimator bit for bit.
        for builder, features in (
            (tiny_builder, tiny_vec),
            (other_builder, other_vec),
        ):
            scalar = builder.features_for_query(query, vectorized=False)
            np.testing.assert_array_equal(features.matrix, scalar.matrix)

    def test_no_predicate_is_cacheable(self, tiny_stats):
        cache = PlanCache()
        builder = FeatureBuilder(tiny_stats, (), plan_cache=cache)
        query = Query([count_star()])
        builder.features_for_query(query)
        builder.features_for_query(query)
        assert cache.misses == 1 and cache.hits == 1


class TestLRUEviction:
    """Crossing ``limit`` evicts exactly the least recently used plan —
    not the whole cache (the regression: the 257th distinct predicate
    used to clear everything and collapse the hit rate)."""

    PREDICATES = [Comparison("x", ">", float(i)) for i in range(8)]

    def test_overflow_evicts_one_entry_not_all(self):
        cache = PlanCache(limit=2)
        a, b, c = self.PREDICATES[:3]
        cache.get(a)
        cache.get(b)
        cache.get(c)  # at capacity: evicts a (oldest), keeps b
        assert len(cache) == 2
        assert cache.misses == 3 and cache.hits == 0
        cache.get(b)
        cache.get(c)
        assert cache.hits == 2 and cache.misses == 3

    def test_hit_refreshes_recency(self):
        cache = PlanCache(limit=2)
        a, b, c = self.PREDICATES[:3]
        cache.get(a)
        cache.get(b)
        cache.get(a)  # a is now most recent
        cache.get(c)  # evicts b, not a
        assert cache.hits == 1
        cache.get(a)
        assert cache.hits == 2  # a survived the eviction
        cache.get(b)  # b was the one evicted
        assert cache.misses == 4

    def test_long_scan_keeps_hot_entry_alive(self):
        """A hot predicate interleaved with a stream of distinct cold
        ones stays cached across many limit crossings."""
        cache = PlanCache(limit=3)
        hot = self.PREDICATES[0]
        cache.get(hot)
        for cold in self.PREDICATES[1:]:
            cache.get(cold)
            cache.get(hot)
        assert cache.hits == len(self.PREDICATES) - 1
        assert cache.misses == len(self.PREDICATES)
        assert len(cache) == 3

    def test_compiled_plan_identity_preserved_on_hit(self):
        cache = PlanCache(limit=2)
        plan = cache.get(self.PREDICATES[0])
        assert cache.get(self.PREDICATES[0]) is plan


class TestThreadSafety:
    """Concurrent ``get`` used to race: two threads could both pop the
    same key in the LRU refresh (KeyError), or both evict at capacity
    and drop a just-inserted plan. The cache now holds a lock across
    the whole lookup/insert/evict step."""

    def test_concurrent_get_hammer(self):
        import threading

        cache = PlanCache(limit=4)
        predicates = [Comparison("x", ">", float(i)) for i in range(12)]
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for __ in range(400):
                    predicate = predicates[int(rng.integers(len(predicates)))]
                    plan = cache.get(predicate)
                    assert plan is not None
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # The cache never exceeds its limit and its counters balance.
        assert len(cache) <= 4
        assert cache.hits + cache.misses == 8 * 400

    def test_hit_returns_same_plan_under_contention(self):
        import threading

        cache = PlanCache(limit=8)
        predicate = Comparison("x", ">", 1.0)
        canonical = cache.get(predicate)
        seen: list[object] = []
        barrier = threading.Barrier(6)

        def reader() -> None:
            barrier.wait()
            for __ in range(200):
                seen.append(cache.get(predicate))

        threads = [threading.Thread(target=reader) for __ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(plan is canonical for plan in seen)


class TestPersistedKeys:
    """``PlanCache.keys()`` backs the persisted ``plan_cache_keys``."""

    def test_keys_sorted_and_order_independent(self):
        forward, backward = PlanCache(), PlanCache()
        first = And([Comparison("x", ">", 3.0), InSet("cat", {"a", "b"})])
        second = InSet("cat", {"b", "a"})
        for predicate in (first, second):
            forward.get(predicate)
        for predicate in (second, first):
            backward.get(predicate)
        assert forward.keys() == backward.keys()
        assert list(forward.keys()) == sorted(forward.keys())

    def test_inset_repr_independent_of_value_order(self):
        # repr goes through label(), which sorts the frozenset — the
        # persisted keys must not depend on hash randomization.
        assert repr(InSet("c", ["b", "a", "z"])) == repr(
            InSet("c", ["z", "a", "b"])
        )
