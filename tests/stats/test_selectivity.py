"""Unit tests for per-partition selectivity estimation.

The load-bearing property is *perfect recall*: ``upper == 0`` must imply
no row of the partition satisfies the predicate (paper section 3.2). The
tests check that against ground truth for randomized predicates, plus the
paper's combination rules for AND/OR/NOT and the joint handling of
same-column clauses.
"""

import numpy as np
import pytest

from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.sketches.builder import build_partition_statistics
from repro.stats.selectivity import SelectivityEstimate, estimate_selectivity


@pytest.fixture(scope="module")
def partition_and_stats(tiny_ptable):
    partition = tiny_ptable[4]
    return partition, build_partition_statistics(partition)


def true_fraction(partition, predicate) -> float:
    mask = predicate.mask(partition.columns)
    return float(mask.mean())


class TestNoPredicate:
    def test_none_is_full_selectivity(self, partition_and_stats):
        __, stats = partition_and_stats
        estimate = estimate_selectivity(None, stats)
        assert estimate == SelectivityEstimate.exact(1.0)


class TestPerfectRecall:
    """upper == 0 must never happen when rows actually match."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_conjunctions(self, partition_and_stats, seed):
        partition, stats = partition_and_stats
        gen = np.random.default_rng(seed)
        columns = partition.columns
        clauses = []
        for __ in range(gen.integers(1, 4)):
            roll = gen.random()
            if roll < 0.4:
                value = float(gen.choice(columns["x"]))
                clauses.append(Comparison("x", str(gen.choice(["<", ">="])), value))
            elif roll < 0.7:
                value = int(gen.choice(columns["d"]))
                clauses.append(Comparison("d", "<=", value))
            else:
                value = str(gen.choice(columns["cat"]))
                clauses.append(InSet("cat", {value}))
        predicate = And(clauses) if len(clauses) > 1 else clauses[0]
        truth = true_fraction(partition, predicate)
        estimate = estimate_selectivity(predicate, stats)
        if truth > 0:
            assert estimate.upper > 0.0

    def test_impossible_range_is_zero(self, partition_and_stats):
        __, stats = partition_and_stats
        predicate = And(
            [Comparison("x", "<", 1.0), Comparison("x", ">", 10.0)]
        )
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.upper == 0.0

    def test_absent_category_is_zero(self, partition_and_stats):
        __, stats = partition_and_stats
        estimate = estimate_selectivity(InSet("cat", {"no-such-value"}), stats)
        assert estimate.upper == 0.0


class TestCombinationRules:
    def test_and_upper_is_min(self, partition_and_stats):
        __, stats = partition_and_stats
        a = Comparison("d", "<", 200.0)  # everything
        b = InSet("cat", {"dd"})  # rare
        joint = estimate_selectivity(And([a, b]), stats)
        b_alone = estimate_selectivity(b, stats)
        assert joint.upper == pytest.approx(
            min(1.0, b_alone.upper), abs=1e-9
        )

    def test_and_indep_is_product(self, partition_and_stats):
        __, stats = partition_and_stats
        a = InSet("cat", {"a"})
        b = InSet("tag", {"t001"})
        sa = estimate_selectivity(a, stats).indep
        sb = estimate_selectivity(b, stats).indep
        joint = estimate_selectivity(And([a, b]), stats)
        assert joint.indep == pytest.approx(sa * sb)

    def test_or_upper_is_capped_sum(self, partition_and_stats):
        __, stats = partition_and_stats
        a = InSet("cat", {"a"})
        b = InSet("cat", {"b"})
        sa = estimate_selectivity(a, stats).upper
        sb = estimate_selectivity(b, stats).upper
        joint = estimate_selectivity(Or([a, b]), stats)
        assert joint.upper == pytest.approx(min(1.0, sa + sb))

    def test_or_indep_follows_paper_min_rule(self, partition_and_stats):
        __, stats = partition_and_stats
        a = InSet("cat", {"a"})
        b = InSet("cat", {"dd"})
        sa = estimate_selectivity(a, stats).indep
        sb = estimate_selectivity(b, stats).indep
        joint = estimate_selectivity(Or([a, b]), stats)
        assert joint.indep == pytest.approx(min(sa, sb))

    def test_not_complements(self, partition_and_stats):
        __, stats = partition_and_stats
        clause = InSet("cat", {"a"})
        direct = estimate_selectivity(clause, stats)
        negated = estimate_selectivity(Not(clause), stats)
        assert negated.upper == pytest.approx(1.0 - direct.lower)
        assert negated.indep == pytest.approx(1.0 - direct.indep)

    def test_clause_min_max_bracket(self, partition_and_stats):
        __, stats = partition_and_stats
        predicate = And(
            [InSet("cat", {"a"}), InSet("cat", {"dd"}), Comparison("x", ">", 2.0)]
        )
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.clause_min <= estimate.clause_max


class TestJointSameColumn:
    def test_conjoined_ranges_narrow(self, partition_and_stats):
        partition, stats = partition_and_stats
        predicate = And(
            [Comparison("x", ">=", 5.0), Comparison("x", "<", 15.0)]
        )
        truth = true_fraction(partition, predicate)
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.indep == pytest.approx(truth, abs=0.15)
        # Joint handling: the combined estimate must be well below the
        # independence product of the marginals when ranges overlap a lot.
        lo = estimate_selectivity(Comparison("x", ">=", 5.0), stats).indep
        hi = estimate_selectivity(Comparison("x", "<", 15.0), stats).indep
        assert estimate.indep <= min(lo, hi) + 1e-9

    def test_contradictory_equalities(self, partition_and_stats):
        __, stats = partition_and_stats
        predicate = And(
            [Comparison("x", "==", 2.0), Comparison("x", "==", 9.0)]
        )
        assert estimate_selectivity(predicate, stats).upper == 0.0


class TestAccuracy:
    @pytest.mark.parametrize("quantile", [0.1, 0.5, 0.9])
    def test_range_estimates_close(self, partition_and_stats, quantile):
        partition, stats = partition_and_stats
        threshold = float(np.quantile(partition.column("x"), quantile))
        predicate = Comparison("x", "<=", threshold)
        truth = true_fraction(partition, predicate)
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.indep == pytest.approx(truth, abs=0.1)

    def test_exact_dict_contains(self, partition_and_stats):
        partition, stats = partition_and_stats
        predicate = Contains("cat", "d")
        truth = true_fraction(partition, predicate)
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.indep == pytest.approx(truth, abs=1e-9)

    def test_categorical_frequency(self, partition_and_stats):
        partition, stats = partition_and_stats
        predicate = InSet("cat", {"a"})
        truth = true_fraction(partition, predicate)
        estimate = estimate_selectivity(predicate, stats)
        assert estimate.indep == pytest.approx(truth, abs=0.05)
