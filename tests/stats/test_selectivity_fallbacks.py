"""Selectivity estimation on fallback paths.

The main selectivity tests cover dictionary-backed columns; these cover
the degraded paths: high-cardinality categoricals without exact
dictionaries (heavy-hitter / hashed-histogram fallbacks), Contains
without a dictionary (bounded by unseen mass), date columns, and deeply
nested predicate trees.
"""

import numpy as np
import pytest

from repro.engine.predicates import And, Comparison, Contains, InSet, Not, Or
from repro.sketches.builder import build_partition_statistics
from repro.stats.selectivity import estimate_selectivity


@pytest.fixture(scope="module")
def stats(tiny_ptable):
    # 'tag' has 300 distinct values and no exact dictionary.
    return tiny_ptable[2], build_partition_statistics(tiny_ptable[2])


class TestHighCardinalityCategorical:
    def test_in_estimate_positive_for_present_value(self, stats):
        partition, pstats = stats
        present = str(partition.column("tag")[0])
        estimate = estimate_selectivity(InSet("tag", {present}), pstats)
        assert estimate.upper > 0.0

    def test_in_estimate_small_for_rare_values(self, stats):
        partition, pstats = stats
        present = str(partition.column("tag")[0])
        estimate = estimate_selectivity(InSet("tag", {present}), pstats)
        # ~100 rows, 300-value vocabulary: any single tag is rare.
        assert estimate.indep < 0.25

    def test_contains_without_dictionary_bounds_truth(self, stats):
        partition, pstats = stats
        clause = Contains("tag", "t0")
        truth = float(clause.mask(partition.columns).mean())
        estimate = estimate_selectivity(clause, pstats)
        # No exact dictionary: the estimate comes from heavy hitters plus
        # an unseen-mass allowance; the upper must bound the truth.
        assert estimate.upper >= truth - 1e-9
        assert 0.0 <= estimate.indep <= estimate.upper + 1e-9

    def test_contains_recall_against_truth(self, stats):
        partition, pstats = stats
        clause = Contains("tag", "t1")
        truth = float(clause.mask(partition.columns).mean())
        estimate = estimate_selectivity(clause, pstats)
        if truth > 0:
            assert estimate.upper > 0.0


class TestDateColumns:
    def test_date_range_estimates(self, stats):
        partition, pstats = stats
        days = partition.column("d")
        mid = int(np.median(days))
        clause = Comparison("d", "<=", mid)
        truth = float((days <= mid).mean())
        estimate = estimate_selectivity(clause, pstats)
        assert estimate.indep == pytest.approx(truth, abs=0.25)

    def test_date_out_of_range_is_zero(self, stats):
        partition, pstats = stats
        above = int(partition.column("d").max()) + 10
        estimate = estimate_selectivity(Comparison("d", ">", above), pstats)
        assert estimate.upper == 0.0


class TestNestedTrees:
    def test_not_around_and(self, stats):
        partition, pstats = stats
        inner = And(
            [Comparison("x", ">", 5.0), Comparison("x", "<", 50.0)]
        )
        predicate = Not(inner)
        truth = float(predicate.mask(partition.columns).mean())
        estimate = estimate_selectivity(predicate, pstats)
        if truth > 0:
            assert estimate.upper > 0.0
        assert 0.0 <= estimate.indep <= 1.0

    def test_or_of_ands_mixed_columns(self, stats):
        partition, pstats = stats
        predicate = Or(
            [
                And([Comparison("x", ">", 3.0), InSet("cat", {"a"})]),
                And([Comparison("y", "<", 0.0), InSet("cat", {"b"})]),
            ]
        )
        truth = float(predicate.mask(partition.columns).mean())
        estimate = estimate_selectivity(predicate, pstats)
        if truth > 0:
            assert estimate.upper > 0.0
        assert estimate.lower <= estimate.upper + 1e-9

    def test_same_column_not_merged_across_or(self, stats):
        """OR keeps same-column clauses independent (no joint narrowing)."""
        __, pstats = stats
        a = Comparison("x", "<", 5.0)
        b = Comparison("x", ">", 50.0)
        joint = estimate_selectivity(Or([a, b]), pstats)
        sa = estimate_selectivity(a, pstats).upper
        sb = estimate_selectivity(b, pstats).upper
        assert joint.upper == pytest.approx(min(1.0, sa + sb))

    def test_deeply_nested_leaf_collection(self, stats):
        __, pstats = stats
        predicate = Not(
            Or(
                [
                    And([Comparison("x", ">", 1.0), Comparison("y", "<", 1.0)]),
                    Not(InSet("cat", {"c"})),
                ]
            )
        )
        estimate = estimate_selectivity(predicate, pstats)
        assert 0.0 <= estimate.clause_min <= estimate.clause_max <= 1.0
