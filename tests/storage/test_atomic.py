"""The atomic write-replace primitive and the transient-read retry.

Crash-point coverage lives in ``test_killpoints.py``; this module pins
the primitive's contract under *surviving* failures: the target file is
never torn, the previous generation stays reachable as ``.bak``, and
transient ``EIO``/``EINTR`` reads are retried with capped backoff.
"""

from __future__ import annotations

import errno

import pytest

from repro.errors import StorageError
from repro.storage.atomic import (
    atomic_write_bytes,
    backup_path,
    cleanup_stale_temps,
    read_with_retry,
    temp_path,
)
from repro.storage.faults import FaultyIO


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"generation-1")
        assert path.read_bytes() == b"generation-1"
        assert not temp_path(path).exists()

    def test_backup_holds_previous_generation(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"generation-1")
        atomic_write_bytes(path, b"generation-2")
        assert path.read_bytes() == b"generation-2"
        assert backup_path(path).read_bytes() == b"generation-1"

    def test_no_backup_when_disabled(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"generation-1")
        atomic_write_bytes(path, b"generation-2", keep_backup=False)
        assert not backup_path(path).exists()

    def test_enospc_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"generation-1")
        io = FaultyIO(enospc_after_bytes=4)
        with pytest.raises(StorageError, match="atomic write"):
            atomic_write_bytes(path, b"generation-2", io=io)
        assert path.read_bytes() == b"generation-1"
        # The partial temp file was cleaned up on the way out.
        assert not temp_path(path).exists()

    def test_cleanup_stale_temps(self, tmp_path):
        path = tmp_path / "artifact.bin"
        temp_path(path).write_bytes(b"torn")
        stale_bak_tmp = tmp_path / "artifact.bin.bak.tmp"
        stale_bak_tmp.write_bytes(b"torn")
        cleanup_stale_temps(path)
        assert not temp_path(path).exists()
        assert not stale_bak_tmp.exists()


class TestReadWithRetry:
    def test_transient_eio_retried_with_backoff(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"payload")
        io = FaultyIO(fail_reads=3)
        assert read_with_retry(path, io=io, backoff=0.01) == b"payload"
        assert io.reads_failed == 3
        # Exponential, capped: 0.01, 0.02, 0.04 (recorded, never slept).
        assert io.sleeps == [0.01, 0.02, 0.04]

    def test_backoff_is_capped(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"payload")
        io = FaultyIO(fail_reads=4)
        read_with_retry(path, io=io, backoff=0.1, max_backoff=0.25)
        assert io.sleeps == [0.1, 0.2, 0.25, 0.25]

    def test_gives_up_after_retries(self, tmp_path):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"payload")
        io = FaultyIO(fail_reads=100)
        with pytest.raises(OSError) as excinfo:
            read_with_retry(path, io=io, retries=2)
        assert excinfo.value.errno == errno.EIO
        assert io.sleeps == [0.01, 0.02]

    def test_nontransient_error_propagates_immediately(self, tmp_path):
        io = FaultyIO()
        with pytest.raises(FileNotFoundError):
            read_with_retry(tmp_path / "missing.bin", io=io)
        assert io.sleeps == []
