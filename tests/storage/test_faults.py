"""The fault injector itself: its durability model must be trustworthy.

Every crash-safety claim in this package rests on :class:`FaultyIO`
modeling a power cut honestly — unsynced writes lost, torn prefixes
visible, kill points firing exactly once each. These tests pin that
model so the kill-point sweeps prove something real.
"""

from __future__ import annotations

import errno

import pytest

from repro.storage.faults import (
    FaultyIO,
    SimulatedCrash,
    count_ops,
    sweep_kill_points,
)


class TestDurabilityModel:
    def test_unsynced_writes_die_with_the_machine(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO()
        handle = io.open(path, "wb")
        io.write(handle, b"volatile")
        io.crashed = True  # the power cut
        io.close(handle)
        assert not path.exists()

    def test_fsynced_writes_survive(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO()
        handle = io.open(path, "wb")
        io.write(handle, b"durable")
        io.fsync(handle)
        io.crashed = True
        io.close(handle)
        assert path.read_bytes() == b"durable"

    def test_clean_close_flushes_like_page_cache(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO()
        handle = io.open(path, "wb")
        io.write(handle, b"lazy")
        io.close(handle)
        assert path.read_bytes() == b"lazy"

    def test_append_mode_preserves_existing_bytes(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"head")
        io = FaultyIO()
        handle = io.open(path, "ab")
        io.write(handle, b"+tail")
        io.fsync(handle)
        io.close(handle)
        assert path.read_bytes() == b"head+tail"


class TestByteFaults:
    def test_torn_write_leaves_prefix_visible(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO(crash_after_bytes=3)
        handle = io.open(path, "wb")
        with pytest.raises(SimulatedCrash):
            io.write(handle, b"abcdef")
        # Worst case: the torn prefix reached disk before the power cut.
        assert path.read_bytes() == b"abc"
        io.close(handle)
        assert path.read_bytes() == b"abc"

    def test_enospc_is_survivable_with_partial_file(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO(enospc_after_bytes=2)
        handle = io.open(path, "wb")
        with pytest.raises(OSError) as excinfo:
            io.write(handle, b"abcdef")
        assert excinfo.value.errno == errno.ENOSPC
        assert not io.crashed
        assert path.read_bytes() == b"ab"

    def test_flip_byte_at_cumulative_offset(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO(flip_byte_at=5)
        handle = io.open(path, "wb")
        io.write(handle, b"abcd")
        io.write(handle, b"efgh")  # offset 5 is 'f'
        io.fsync(handle)
        io.close(handle)
        expected = bytearray(b"abcdefgh")
        expected[5] ^= 0x40
        assert path.read_bytes() == bytes(expected)

    def test_torn_rename_never_renames(self, tmp_path):
        src = tmp_path / "src.bin"
        dst = tmp_path / "dst.bin"
        src.write_bytes(b"new")
        dst.write_bytes(b"old")
        io = FaultyIO(torn_rename=True)
        with pytest.raises(SimulatedCrash):
            io.replace(src, dst)
        assert dst.read_bytes() == b"old"
        assert src.read_bytes() == b"new"


class TestKillPoints:
    def test_crash_fires_before_the_scheduled_op(self, tmp_path):
        path = tmp_path / "f.bin"
        io = FaultyIO(crash_at_op=1)  # write is op 0, fsync is op 1
        handle = io.open(path, "wb")
        io.write(handle, b"data")
        with pytest.raises(SimulatedCrash):
            io.fsync(handle)
        io.close(handle)
        assert not path.exists()  # fsync never ran -> nothing durable

    def test_count_ops_records_without_crashing(self, tmp_path):
        path = tmp_path / "f.bin"

        def action(io):
            handle = io.open(path, "wb")
            io.write(handle, b"data")
            io.fsync(handle)
            io.close(handle)
            io.replace(path, tmp_path / "g.bin")

        assert count_ops(action) == 3  # write, fsync, replace

    def test_sweep_visits_every_kill_point(self, tmp_path):
        seen = []

        def action(io):
            handle = io.open(tmp_path / "f.bin", "wb")
            io.write(handle, b"data")
            io.fsync(handle)
            io.close(handle)

        def check(io):
            seen.append(io.crash_at_op)
            assert io.crashed

        assert sweep_kill_points(action, check) == 2
        assert seen == [0, 1]
