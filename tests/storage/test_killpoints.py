"""Kill-point sweeps: the crash-safety claims, proven by enumeration.

Every mutating filesystem operation in a save / WAL append / checkpoint
is a kill point; :func:`~repro.storage.faults.sweep_kill_points` crashes
the operation sequence before each one and the checks assert the
recovered state is *bit-identical* to either the pre-crash or the
post-crash state — never a third thing. Byte-level faults (torn writes,
ENOSPC, bit flips) ride the same harness.

The unmarked tests are the tier-1 subset (small statistics, sampled
flip offsets); the ``slow``-marked variants sweep exhaustively.
"""

from __future__ import annotations

import copy
import warnings

import pytest

from repro.errors import (
    CorruptBundleError,
    DegradedLoadWarning,
    StorageError,
)
from repro.sketches.columnar import ColumnarSketchIndex
from repro.storage import (
    StatisticsStore,
    load_statistics_bundle,
    recover_statistics_bundle,
    replay_batch_into_statistics,
    save_statistics,
)
from repro.storage.atomic import backup_path
from repro.storage.faults import FaultyIO, SimulatedCrash, sweep_kill_points


@pytest.fixture
def batch(rng):
    n = 30
    return {
        "x": rng.exponential(10.0, n) + 1.0,
        "y": rng.normal(0.0, 5.0, n),
        "d": rng.integers(0, 100, n),
        "cat": rng.choice(["a", "b", "c", "dd"], n),
        "tag": rng.choice([f"t{i:03d}" for i in range(300)], n),
    }


def _serialize(stats, path) -> bytes:
    """Canonical bundle bytes for bit-level state comparison."""
    save_statistics(stats, path)
    return path.read_bytes()


class TestSaveStatisticsSweep:
    def test_every_crash_point_leaves_old_or_new_bundle(
        self, tiny_stats, tmp_path
    ):
        path = tmp_path / "stats.ps3stats"
        save_statistics(tiny_stats, path, plan_cache_keys=("old-gen",))
        old = path.read_bytes()
        save_statistics(
            tiny_stats, tmp_path / "ref.ps3stats", plan_cache_keys=("new-gen",)
        )
        new = (tmp_path / "ref.ps3stats").read_bytes()
        assert old != new

        def action(io):
            save_statistics(
                tiny_stats, path, plan_cache_keys=("new-gen",), io=io
            )

        def check(io):
            # Never a torn file: the target is exactly one generation...
            assert path.read_bytes() in (old, new)
            # ...and it loads (clean checksums), possibly via recovery.
            bundle = recover_statistics_bundle(path)
            assert bundle.statistics.num_partitions == tiny_stats.num_partitions

        # write, fsync, (unlink+link+replace for .bak), replace, fsync_dir
        assert sweep_kill_points(action, check) >= 5

    def test_every_crash_point_leaves_a_mappable_bundle(
        self, tiny_stats, tmp_path
    ):
        """The mmap cold start must survive the same crash sweep: every
        kill point leaves a file whose manifest verifies and whose lazy
        sections decode clean on first touch."""
        path = tmp_path / "stats.ps3stats"
        index = ColumnarSketchIndex.build(tiny_stats)
        save_statistics(
            tiny_stats, path, index=index, plan_cache_keys=("old-gen",)
        )
        old = path.read_bytes()
        save_statistics(
            tiny_stats,
            tmp_path / "ref.ps3stats",
            index=index,
            plan_cache_keys=("new-gen",),
        )
        new = (tmp_path / "ref.ps3stats").read_bytes()

        def action(io):
            save_statistics(
                tiny_stats, path, index=index, plan_cache_keys=("new-gen",), io=io
            )

        def check(io):
            assert path.read_bytes() in (old, new)
            bundle = load_statistics_bundle(path, mmap=True)
            # Force both lazy sections — their deferred CRCs must hold.
            assert bundle.index is not None
            assert bundle.statistics.num_partitions == tiny_stats.num_partitions

        assert sweep_kill_points(action, check) >= 5

    def test_backup_generation_survives_the_overwrite(self, tiny_stats, tmp_path):
        path = tmp_path / "stats.ps3stats"
        save_statistics(tiny_stats, path, plan_cache_keys=("old-gen",))
        old = path.read_bytes()
        save_statistics(tiny_stats, path, plan_cache_keys=("new-gen",))
        assert backup_path(path).read_bytes() == old


class TestWalAppendSweep:
    def test_append_crash_replay_parity(self, tiny_stats, batch, tmp_path):
        """Acceptance: append -> crash -> replay == append without crash."""
        base = copy.deepcopy(tiny_stats)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base)  # also creates the empty journal

        pre = _serialize(base, tmp_path / "pre.ref")
        post_stats = copy.deepcopy(base)
        replay_batch_into_statistics(post_stats, batch)
        post = _serialize(post_stats, tmp_path / "post.ref")
        assert pre != post

        def action(io):
            StatisticsStore(tmp_path, io=io).log_append(batch)

        def check(io):
            stats, __ = StatisticsStore(tmp_path).load_statistics()
            recovered = _serialize(stats, tmp_path / "got.ref")
            assert recovered in (pre, post)

        assert sweep_kill_points(action, check) == 2  # record write, fsync

    @pytest.mark.parametrize("torn_at", [1, 17, 64, 300, 1500])
    def test_torn_record_write_recovers_to_pre_state(
        self, tiny_stats, batch, tmp_path, torn_at
    ):
        """A crash partway through the record write loses only the batch."""
        base = copy.deepcopy(tiny_stats)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base)
        pre = _serialize(base, tmp_path / "pre.ref")

        io = FaultyIO(crash_after_bytes=torn_at)
        with pytest.raises(SimulatedCrash):
            StatisticsStore(tmp_path, io=io).log_append(batch)

        with warnings.catch_warnings():
            # The torn tail is the expected crash residue.
            warnings.simplefilter("ignore", DegradedLoadWarning)
            stats, __ = StatisticsStore(tmp_path).load_statistics()
        assert _serialize(stats, tmp_path / "got.ref") == pre


class TestCheckpointSweep:
    def test_every_crash_point_preserves_logical_state(
        self, tiny_stats, batch, tmp_path
    ):
        base = copy.deepcopy(tiny_stats)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base)
        store.log_append(batch)
        store.log_append(batch)
        expected_stats, __ = StatisticsStore(tmp_path).load_statistics()
        expected = _serialize(expected_stats, tmp_path / "expected.ref")

        def action(io):
            crashing = StatisticsStore(tmp_path, io=io)
            stats, index = crashing.load_statistics()
            crashing.checkpoint(stats, index=index)

        def check(io):
            stats, __ = StatisticsStore(tmp_path).load_statistics()
            assert _serialize(stats, tmp_path / "got.ref") == expected

        # bundle save (7 ops) + journal truncation (its own atomic write)
        assert sweep_kill_points(action, check) >= 10


class TestEnospc:
    def test_enospc_mid_checkpoint_keeps_the_old_state(
        self, tiny_stats, batch, tmp_path
    ):
        base = copy.deepcopy(tiny_stats)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base)
        store.log_append(batch)
        expected_stats, __ = StatisticsStore(tmp_path).load_statistics()
        expected = _serialize(expected_stats, tmp_path / "expected.ref")

        io = FaultyIO(enospc_after_bytes=500)
        sick = StatisticsStore(tmp_path, io=io)
        stats, index = sick.load_statistics()
        with pytest.raises(StorageError, match="atomic write"):
            sick.checkpoint(stats, index=index)

        recovered, __ = StatisticsStore(tmp_path).load_statistics()
        assert _serialize(recovered, tmp_path / "got.ref") == expected

    def test_enospc_mid_append_leaves_recoverable_journal(
        self, tiny_stats, batch, tmp_path
    ):
        base = copy.deepcopy(tiny_stats)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base)
        pre = _serialize(base, tmp_path / "pre.ref")

        io = FaultyIO(enospc_after_bytes=200)
        with pytest.raises(OSError) as excinfo:
            StatisticsStore(tmp_path, io=io).log_append(batch)
        assert excinfo.value.errno is not None

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedLoadWarning)
            stats, __ = StatisticsStore(tmp_path).load_statistics()
        assert _serialize(stats, tmp_path / "got.ref") == pre


def _assert_flip_detected(raw: bytes, offset: int, reference: bytes, tmp_path):
    """Flipping ``raw[offset]`` must raise, degrade, or change nothing.

    "Change nothing" is impossible by construction (every byte is under
    a checksum), so the assertion is: corruption is *never silent*.
    """
    flipped = bytearray(raw)
    flipped[offset] ^= 0x40
    bad = tmp_path / "flipped.ps3stats"
    bad.write_bytes(bytes(flipped))
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bundle = recover_statistics_bundle(bad)
    except CorruptBundleError:
        return  # detected outright
    degraded = [
        w for w in caught if isinstance(w.message, DegradedLoadWarning)
    ]
    assert degraded, f"byte {offset}: flip loaded silently"
    # Degraded load: the index is dropped but the statistics are clean.
    assert bundle.index is None
    assert (
        _serialize(bundle.statistics, tmp_path / "got.ref") == reference
    ), f"byte {offset}: degraded load changed the statistics"


class TestFlippedBytes:
    """Differential sweep: no single flipped byte is ever silent."""

    @pytest.fixture()
    def saved(self, tiny_stats, tmp_path_factory):
        path = tmp_path_factory.mktemp("flip") / "stats.ps3stats"
        save_statistics(
            tiny_stats,
            path,
            index=ColumnarSketchIndex.build(tiny_stats),
            plan_cache_keys=("k-1",),
        )
        reference = _serialize(
            tiny_stats, path.with_name("reference.ps3stats")
        )
        return path.read_bytes(), reference

    def test_sampled_offsets(self, saved, tmp_path):
        raw, reference = saved
        # Framing bytes (length prefix, manifest head, footer) plus an
        # even sample across the whole file.
        offsets = list(range(12)) + list(range(len(raw) - 8, len(raw)))
        offsets += list(range(12, len(raw) - 8, 997))
        for offset in offsets:
            _assert_flip_detected(raw, offset, reference, tmp_path)

    @pytest.mark.slow
    def test_exhaustive_offsets(self, saved, tmp_path):
        raw, reference = saved
        for offset in range(0, len(raw), 13):
            _assert_flip_detected(raw, offset, reference, tmp_path)


def _assert_flip_detected_mmap(raw: bytes, offset: int, reference: bytes, tmp_path):
    """The mmap twin of :func:`_assert_flip_detected`.

    The lazy load moves detection to first touch, so the probe forces
    both sections (``index`` then ``statistics``) and accepts the raise
    or the degrade at *either* moment — never a silent load."""
    flipped = bytearray(raw)
    flipped[offset] ^= 0x40
    bad = tmp_path / "flipped.ps3stats"
    bad.write_bytes(bytes(flipped))
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bundle = load_statistics_bundle(bad, mmap=True)
            index = bundle.index
            stats = bundle.statistics
    except CorruptBundleError:
        return  # detected at load or at first touch
    degraded = [
        w for w in caught if isinstance(w.message, DegradedLoadWarning)
    ]
    assert degraded, f"byte {offset}: flip mmap-loaded silently"
    assert index is None
    assert (
        _serialize(stats, tmp_path / "got.ref") == reference
    ), f"byte {offset}: degraded mmap load changed the statistics"


class TestMmapFlippedBytes:
    """The flip sweep again, through the lazy mmap load path."""

    @pytest.fixture()
    def saved(self, tiny_stats, tmp_path_factory):
        path = tmp_path_factory.mktemp("mmapflip") / "stats.ps3stats"
        save_statistics(
            tiny_stats,
            path,
            index=ColumnarSketchIndex.build(tiny_stats),
            plan_cache_keys=("k-1",),
        )
        reference = _serialize(
            tiny_stats, path.with_name("reference.ps3stats")
        )
        return path.read_bytes(), reference

    def test_sampled_offsets(self, saved, tmp_path):
        raw, reference = saved
        offsets = list(range(12)) + list(range(len(raw) - 8, len(raw)))
        offsets += list(range(12, len(raw) - 8, 997))
        for offset in offsets:
            _assert_flip_detected_mmap(raw, offset, reference, tmp_path)

    @pytest.mark.slow
    def test_exhaustive_offsets(self, saved, tmp_path):
        raw, reference = saved
        for offset in range(0, len(raw), 13):
            _assert_flip_detected_mmap(raw, offset, reference, tmp_path)


class TestBakFallback:
    def test_corrupt_bundle_recovers_from_backup(self, tiny_stats, tmp_path):
        path = tmp_path / "stats.ps3stats"
        save_statistics(tiny_stats, path, plan_cache_keys=("gen-1",))
        save_statistics(tiny_stats, path, plan_cache_keys=("gen-2",))
        raw = bytearray(path.read_bytes())
        raw[30] ^= 0x40  # rot inside the manifest
        path.write_bytes(bytes(raw))

        with pytest.warns(DegradedLoadWarning) as caught:
            bundle = recover_statistics_bundle(path)
        assert caught[0].message.reason == "bak-fallback"
        assert bundle.plan_cache_keys == ("gen-1",)

    def test_both_generations_corrupt_raises_the_primary_error(
        self, tiny_stats, tmp_path
    ):
        path = tmp_path / "stats.ps3stats"
        save_statistics(tiny_stats, path)
        save_statistics(tiny_stats, path, plan_cache_keys=("gen-2",))
        for victim in (path, backup_path(path)):
            raw = bytearray(victim.read_bytes())
            raw[30] ^= 0x40
            victim.write_bytes(bytes(raw))
        with pytest.raises(CorruptBundleError):
            recover_statistics_bundle(path)


@pytest.mark.slow
class TestSweepWithIndex:
    """Exhaustive variant: the full bundle (index + plan keys) swept."""

    def test_save_with_index_killpoints(self, tiny_stats, tmp_path):
        index = ColumnarSketchIndex.build(tiny_stats)
        path = tmp_path / "stats.ps3stats"
        save_statistics(tiny_stats, path, index=index)
        old = path.read_bytes()
        save_statistics(
            tiny_stats,
            tmp_path / "ref.ps3stats",
            index=index,
            plan_cache_keys=("new",),
        )
        new = (tmp_path / "ref.ps3stats").read_bytes()

        def action(io):
            save_statistics(
                tiny_stats, path, index=index, plan_cache_keys=("new",), io=io
            )

        def check(io):
            assert path.read_bytes() in (old, new)
            bundle = recover_statistics_bundle(path)
            assert bundle.index is not None

        assert sweep_kill_points(action, check) >= 5

    def test_multi_batch_checkpoint_killpoints(
        self, tiny_stats, batch, tmp_path
    ):
        base = copy.deepcopy(tiny_stats)
        index = ColumnarSketchIndex.build(base)
        store = StatisticsStore(tmp_path)
        store.checkpoint(base, index=index)
        for __ in range(3):
            store.log_append(batch)
        expected_stats, __ = StatisticsStore(tmp_path).load_statistics()
        expected = _serialize(expected_stats, tmp_path / "expected.ref")

        def action(io):
            crashing = StatisticsStore(tmp_path, io=io)
            stats, idx = crashing.load_statistics()
            crashing.checkpoint(stats, index=idx)

        def check(io):
            stats, idx = StatisticsStore(tmp_path).load_statistics()
            assert _serialize(stats, tmp_path / "got.ref") == expected
            assert idx is not None
            assert idx.num_partitions == expected_stats.num_partitions

        assert sweep_kill_points(action, check) >= 10
