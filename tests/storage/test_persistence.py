"""Tests for statistics and model persistence."""

import json

import numpy as np
import pytest

from repro.core.picker import PickerConfig, PS3Picker
from repro.errors import ConfigError, CorruptBundleError
from repro.ml.gbrt import GBRTRegressor
from repro.storage import load_model, load_statistics, save_model, save_statistics


class TestStatisticsRoundtrip:
    @pytest.fixture(scope="class")
    def roundtripped(self, tiny_stats, tmp_path_factory):
        path = tmp_path_factory.mktemp("stats") / "tiny.ps3stats"
        save_statistics(tiny_stats, path)
        return path, load_statistics(path)

    def test_schema_preserved(self, roundtripped, tiny_stats):
        __, restored = roundtripped
        assert restored.schema.names == tiny_stats.schema.names
        for name in tiny_stats.schema.names:
            assert restored.schema[name].kind == tiny_stats.schema[name].kind

    def test_config_preserved(self, roundtripped, tiny_stats):
        __, restored = roundtripped
        assert restored.config == tiny_stats.config

    def test_global_heavy_hitters_preserved(self, roundtripped, tiny_stats):
        __, restored = roundtripped
        assert restored.global_heavy_hitters == tiny_stats.global_heavy_hitters

    def test_sketch_values_preserved(self, roundtripped, tiny_stats):
        __, restored = roundtripped
        for p in range(tiny_stats.num_partitions):
            original = tiny_stats.column_stats(p, "x")
            loaded = restored.column_stats(p, "x")
            assert loaded.measures.mean == pytest.approx(original.measures.mean)
            assert loaded.akmv.distinct_estimate() == pytest.approx(
                original.akmv.distinct_estimate()
            )
            np.testing.assert_allclose(
                loaded.histogram.edges, original.histogram.edges
            )
            cat_original = tiny_stats.column_stats(p, "cat")
            cat_loaded = restored.column_stats(p, "cat")
            assert cat_loaded.heavy_hitter.items() == cat_original.heavy_hitter.items()
            assert cat_loaded.exact_dict.counts == cat_original.exact_dict.counts

    def test_file_size_tracks_sketch_accounting(self, roundtripped, tiny_stats):
        path, __ = roundtripped
        accounted = sum(p.size_bytes() for p in tiny_stats.partitions)
        actual = path.stat().st_size
        # manifest overhead on top of the raw sketch bytes
        assert accounted <= actual <= accounted * 3 + 100_000

    def test_version_check(self, tmp_path, tiny_stats):
        path = tmp_path / "bad.ps3stats"
        save_statistics(tiny_stats, path)
        raw = path.read_bytes()
        header_size = int.from_bytes(raw[:8], "little")
        manifest = json.loads(raw[8 : 8 + header_size])
        manifest["version"] = 99
        header = json.dumps(manifest).encode()
        path.write_bytes(
            len(header).to_bytes(8, "little") + header + raw[8 + header_size :]
        )
        with pytest.raises(ConfigError, match="version"):
            load_statistics(path)


class TestGBRTState:
    def test_state_roundtrip_predicts_identically(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 10))
        y = X[:, 2] * 4 - X[:, 7]
        model = GBRTRegressor(n_trees=15, seed=1).fit(X, y)
        restored = GBRTRegressor.from_state(model.to_state())
        np.testing.assert_allclose(restored.predict(X), model.predict(X))
        np.testing.assert_allclose(
            restored.feature_importances(), model.feature_importances()
        )

    def test_state_is_json_safe(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 4))
        model = GBRTRegressor(n_trees=3).fit(X, X[:, 0])
        json.dumps(model.to_state())  # must not raise


class TestModelRoundtrip:
    @pytest.fixture(scope="class")
    def saved(self, trained_ps3, tmp_path_factory):
        directory = tmp_path_factory.mktemp("model")
        stats_path = directory / "stats.ps3stats"
        model_path = directory / "model.json"
        save_statistics(trained_ps3.statistics, stats_path)
        save_model(trained_ps3.model, model_path)
        return stats_path, model_path

    def test_loaded_model_picks_identically(self, saved, trained_ps3):
        stats_path, model_path = saved
        statistics = load_statistics(stats_path)
        model = load_model(model_path, statistics)
        original_picker = PS3Picker(
            trained_ps3.model, trained_ps3.statistics, PickerConfig(seed=9)
        )
        restored_picker = PS3Picker(model, statistics, PickerConfig(seed=9))
        query = trained_ps3.training_data.queries[0]
        original = original_picker.select(query, 5)
        restored = restored_picker.select(query, 5)
        assert [(c.partition, c.weight) for c in original.selection] == [
            (c.partition, c.weight) for c in restored.selection
        ]

    def test_thresholds_and_exclusions_preserved(self, saved, trained_ps3):
        stats_path, model_path = saved
        model = load_model(model_path, load_statistics(stats_path))
        np.testing.assert_allclose(model.thresholds, trained_ps3.model.thresholds)
        assert model.excluded_families == trained_ps3.model.excluded_families

    def test_dimension_mismatch_rejected(self, saved, trained_ps3, tmp_path):
        __, model_path = saved
        payload = json.loads(model_path.read_text())
        payload["feature_dimension"] += 1
        # Drop the self-checksum: this test is about the semantic
        # dimension check, not corruption detection (legacy files
        # without a crc32 key still load).
        payload.pop("crc32", None)
        bad_path = tmp_path / "bad_model.json"
        bad_path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="retrain"):
            load_model(bad_path, trained_ps3.statistics)

    def test_tampered_model_fails_checksum(self, saved, trained_ps3, tmp_path):
        __, model_path = saved
        payload = json.loads(model_path.read_text())
        payload["feature_dimension"] += 1
        bad_path = tmp_path / "rotted_model.json"
        bad_path.write_text(json.dumps(payload))
        with pytest.raises(CorruptBundleError, match="checksum"):
            load_model(bad_path, trained_ps3.statistics)
