"""Round-trips of the persisted columnar-index artifacts (formats v2/v3).

The stats file may now carry the :class:`ColumnarSketchIndex` arrays and
the warm plan-cache keys alongside the sketch blob. Pinned here:

* saved index arrays reload bit-identical to a fresh sketch-object
  export;
* version-1 files (no index section) still load, with ``index=None`` as
  the re-export fallback signal;
* a corrupted index *section* degrades (``index=None`` plus a
  :class:`~repro.errors.DegradedLoadWarning`) because the sketch blob
  can rebuild it; unsupported versions raise
  :class:`~repro.errors.CorruptBundleError` — still catchable as
  :class:`~repro.errors.ConfigError` for one deprecation release;
* a cold start through the persisted index never touches the
  sketch-object export path (spy test);
* the mmap load (``load_statistics_bundle(mmap=True)``) returns the
  same bundle lazily: read-only zero-copy index arrays, sketch decode
  deferred to first touch, corruption surfacing at first touch with the
  eager path's exact error/degrade behavior — and an mmap-cold-loaded
  index still accepts appended partitions (copy-on-append).
"""

from __future__ import annotations

import json
import struct
import warnings
import zlib

import numpy as np
import pytest

from repro.errors import ConfigError, CorruptBundleError, DegradedLoadWarning
from repro.sketches.columnar import ColumnarSketchIndex
from repro.stats.features import FeatureBuilder
from repro.storage import (
    load_model,
    load_statistics,
    load_statistics_bundle,
    replay_batch_into_statistics,
    save_model,
    save_statistics,
)
from repro.storage.faults import FaultyIO

_FOOTER_MAGIC = b"PS3C"


@pytest.fixture(scope="module")
def saved_with_index(tiny_stats, tmp_path_factory):
    path = tmp_path_factory.mktemp("stats_v3") / "tiny.ps3stats"
    index = ColumnarSketchIndex.build(tiny_stats)
    save_statistics(
        tiny_stats, path, index=index, plan_cache_keys=("p-a", "p-b")
    )
    return path, index


def _assert_indexes_identical(expected, actual):
    """Bitwise comparison of two ColumnarSketchIndex array sets."""
    assert actual.num_partitions == expected.num_partitions
    assert set(actual.columns) == set(expected.columns)
    for name, column in expected.columns.items():
        other = actual.columns[name].array_state()
        for key, arr in column.array_state().items():
            assert arr.dtype == other[key].dtype, (name, key)
            np.testing.assert_array_equal(arr, other[key], err_msg=f"{name}.{key}")


def _rewrite_manifest(path, out_path, mutate):
    """Mutate the manifest while keeping the v3 integrity footer valid.

    Recomputing the footer CRC makes the *mutation* the thing under
    test; without it every rewrite would trip the manifest checksum
    before reaching the targeted code path.
    """
    raw = path.read_bytes()
    header_size = int.from_bytes(raw[:8], "little")
    manifest = json.loads(raw[8 : 8 + header_size])
    blob = raw[8 + header_size :]
    had_footer = manifest.get("version", 1) >= 3
    if had_footer:
        blob = blob[:-8]
    mutate(manifest)
    header = json.dumps(manifest).encode("utf-8")
    if manifest.get("version", 1) >= 3:
        blob = blob + _FOOTER_MAGIC + struct.pack("<I", zlib.crc32(header))
    out_path.write_bytes(struct.pack("<Q", len(header)) + header + blob)
    return out_path


class TestIndexRoundtrip:
    def test_arrays_bit_identical_to_fresh_export(self, saved_with_index):
        path, saved_index = saved_with_index
        bundle = load_statistics_bundle(path)
        assert bundle.index is not None
        fresh = ColumnarSketchIndex.build(bundle.statistics)
        assert set(bundle.index.columns) == set(fresh.columns)
        for name, column in fresh.columns.items():
            loaded = bundle.index.columns[name].array_state()
            for key, arr in column.array_state().items():
                assert loaded[key].dtype == arr.dtype, (name, key)
                np.testing.assert_array_equal(
                    loaded[key], arr, err_msg=f"{name}.{key}"
                )

    def test_plan_cache_keys_roundtrip(self, saved_with_index):
        path, __ = saved_with_index
        assert load_statistics_bundle(path).plan_cache_keys == ("p-a", "p-b")

    def test_plain_load_statistics_unaffected(self, saved_with_index, tiny_stats):
        path, __ = saved_with_index
        restored = load_statistics(path)
        assert restored.global_heavy_hitters == tiny_stats.global_heavy_hitters
        assert restored.num_partitions == tiny_stats.num_partitions

    def test_loaded_index_drives_identical_features(
        self, saved_with_index, tiny_stats
    ):
        path, __ = saved_with_index
        bundle = load_statistics_bundle(path)
        from_index = FeatureBuilder(
            bundle.statistics, ("cat", "d"), index=bundle.index
        )
        from_export = FeatureBuilder(bundle.statistics, ("cat", "d"))
        np.testing.assert_array_equal(
            from_index.static_matrix, from_export.static_matrix
        )

    def test_save_without_index_loads_none(self, tiny_stats, tmp_path):
        path = tmp_path / "noindex.ps3stats"
        save_statistics(tiny_stats, path)
        bundle = load_statistics_bundle(path)
        assert bundle.index is None
        assert bundle.plan_cache_keys == ()

    def test_mismatched_index_rejected_at_save(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        index.num_partitions += 1
        with pytest.raises(ConfigError, match="partitions"):
            save_statistics(tiny_stats, "/dev/null", index=index)

    def test_foreign_columns_rejected_at_save(self, tiny_stats):
        """Same partition count, different dataset: caught at write time,
        not as a misleading 'corrupt' error on every later load."""
        index = ColumnarSketchIndex.build(tiny_stats)
        index.columns["ghost"] = index.columns.pop(next(iter(index.columns)))
        with pytest.raises(ConfigError, match="different dataset"):
            save_statistics(tiny_stats, "/dev/null", index=index)


class TestOldFormatFallback:
    def test_version1_file_loads_without_index(
        self, saved_with_index, tiny_stats, tmp_path
    ):
        path, __ = saved_with_index

        def downgrade(manifest):
            manifest["version"] = 1
            manifest.pop("index", None)
            manifest.pop("plan_cache_keys", None)
            manifest.pop("sections", None)
            manifest.pop("wal_applied_seq", None)

        v1 = _rewrite_manifest(path, tmp_path / "v1.ps3stats", downgrade)
        bundle = load_statistics_bundle(v1)
        assert bundle.index is None
        assert bundle.statistics.num_partitions == tiny_stats.num_partitions
        # The fallback is the pre-v2 export, and it still works.
        rebuilt = ColumnarSketchIndex.build(bundle.statistics)
        assert rebuilt.num_partitions == tiny_stats.num_partitions


class TestCorruption:
    def test_unsupported_version_rejected(self, saved_with_index, tmp_path):
        path, __ = saved_with_index
        bad = _rewrite_manifest(
            path,
            tmp_path / "v99.ps3stats",
            lambda manifest: manifest.update(version=99),
        )
        with pytest.raises(CorruptBundleError, match="version"):
            load_statistics_bundle(bad)
        # Deprecated compatibility: corruption stays catchable as
        # ConfigError for one release (CorruptBundleError subclasses it).
        with pytest.raises(ConfigError, match="version"):
            load_statistics(bad)

    def _assert_degrades(self, bad, tiny_stats):
        """A damaged index section loads with index=None + a warning."""
        with pytest.warns(DegradedLoadWarning) as caught:
            bundle = load_statistics_bundle(bad)
        assert bundle.index is None
        assert caught[0].message.reason == "index-corrupt"
        # The statistics themselves are intact — the index is a cache.
        assert bundle.statistics.num_partitions == tiny_stats.num_partitions

    def test_out_of_bounds_array_degrades(
        self, saved_with_index, tiny_stats, tmp_path
    ):
        path, __ = saved_with_index

        def clobber(manifest):
            column = next(iter(manifest["index"]["columns"]))
            manifest["index"]["columns"][column]["stats"][0] = 10**9

        bad = _rewrite_manifest(path, tmp_path / "oob.ps3stats", clobber)
        self._assert_degrades(bad, tiny_stats)

    def test_bad_dtype_degrades(self, saved_with_index, tiny_stats, tmp_path):
        path, __ = saved_with_index

        def clobber(manifest):
            column = next(iter(manifest["index"]["columns"]))
            manifest["index"]["columns"][column]["stats"][2] = "not-a-dtype"

        bad = _rewrite_manifest(path, tmp_path / "dtype.ps3stats", clobber)
        self._assert_degrades(bad, tiny_stats)

    def test_missing_field_degrades(
        self, saved_with_index, tiny_stats, tmp_path
    ):
        path, __ = saved_with_index

        def clobber(manifest):
            column = next(iter(manifest["index"]["columns"]))
            del manifest["index"]["columns"][column]["hist.edges"]

        bad = _rewrite_manifest(path, tmp_path / "missing.ps3stats", clobber)
        self._assert_degrades(bad, tiny_stats)

    def test_partition_count_mismatch_degrades(
        self, saved_with_index, tiny_stats, tmp_path
    ):
        path, __ = saved_with_index
        bad = _rewrite_manifest(
            path,
            tmp_path / "count.ps3stats",
            lambda manifest: manifest["index"].update(num_partitions=3),
        )
        self._assert_degrades(bad, tiny_stats)

    def test_flipped_manifest_byte_rejected(self, saved_with_index, tmp_path):
        """Manifest bit-rot that the footer CRC must catch.

        A flipped digit inside ``num_rows`` keeps the JSON perfectly
        parseable — without the footer checksum this would load and
        serve wrong numbers.
        """
        path, __ = saved_with_index
        raw = bytearray(path.read_bytes())
        header_size = int.from_bytes(raw[:8], "little")
        marker = raw[8 : 8 + header_size].find(b'"num_rows":')
        assert marker >= 0
        digit = 8 + marker + len(b'"num_rows": ')
        raw[digit] = ord("9") if raw[digit] != ord("9") else ord("8")
        bad = tmp_path / "rot.ps3stats"
        bad.write_bytes(bytes(raw))
        with pytest.raises(CorruptBundleError, match="manifest checksum"):
            load_statistics_bundle(bad)

    def test_flipped_sketch_blob_byte_rejected(
        self, saved_with_index, tmp_path
    ):
        path, __ = saved_with_index
        raw = bytearray(path.read_bytes())
        header_size = int.from_bytes(raw[:8], "little")
        raw[8 + header_size + 3] ^= 0x40  # inside the sketch region
        bad = tmp_path / "blobrot.ps3stats"
        bad.write_bytes(bytes(raw))
        with pytest.raises(CorruptBundleError, match="sketch section"):
            load_statistics_bundle(bad)

    def test_truncated_file_rejected(self, saved_with_index, tmp_path):
        path, __ = saved_with_index
        raw = path.read_bytes()
        bad = tmp_path / "torn.ps3stats"
        bad.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptBundleError):
            load_statistics_bundle(bad)

    def test_stale_index_rejected_by_feature_builder(self, tiny_stats):
        index = ColumnarSketchIndex.build(tiny_stats)
        index.num_partitions -= 1
        with pytest.raises(ConfigError, match="rebuild"):
            FeatureBuilder(tiny_stats, ("cat", "d"), index=index)


class TestColdStartSkipsExport:
    """Cold start via the persisted index must never export sketches."""

    def test_feature_builder_does_not_export(
        self, saved_with_index, monkeypatch
    ):
        path, __ = saved_with_index
        bundle = load_statistics_bundle(path)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("sketch-object export ran on cold start")

        monkeypatch.setattr(ColumnarSketchIndex, "build", boom)
        builder = FeatureBuilder(
            bundle.statistics, ("cat", "d"), index=bundle.index
        )
        assert builder.sketch_index is bundle.index

    def test_model_cold_start_does_not_export(
        self, trained_ps3, tmp_path, monkeypatch
    ):
        stats_path = tmp_path / "stats.ps3stats"
        model_path = tmp_path / "model.json"
        save_statistics(
            trained_ps3.statistics,
            stats_path,
            index=trained_ps3.feature_builder.sketch_index,
            plan_cache_keys=trained_ps3.feature_builder.plan_cache.keys(),
        )
        save_model(trained_ps3.model, model_path)
        bundle = load_statistics_bundle(stats_path)
        assert bundle.index is not None

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("sketch-object export ran on cold start")

        monkeypatch.setattr(ColumnarSketchIndex, "build", boom)
        model = load_model(model_path, bundle.statistics, index=bundle.index)
        features = model.feature_builder.features_for_query(
            trained_ps3.training_data.queries[0]
        )
        assert features.matrix.shape[0] == bundle.statistics.num_partitions


class TestMmapLoad:
    """``mmap=True``: same bundle, lazily — and lazily *verified*."""

    def test_index_bit_identical_to_eager_load(self, saved_with_index):
        path, __ = saved_with_index
        eager = load_statistics_bundle(path)
        mapped = load_statistics_bundle(path, mmap=True)
        assert mapped.plan_cache_keys == eager.plan_cache_keys
        assert mapped.wal_applied_seq == eager.wal_applied_seq
        _assert_indexes_identical(eager.index, mapped.index)

    def test_lazy_statistics_identical_to_eager(
        self, saved_with_index, tmp_path
    ):
        path, __ = saved_with_index
        save_statistics(
            load_statistics_bundle(path).statistics, tmp_path / "eager.ref"
        )
        save_statistics(
            load_statistics_bundle(path, mmap=True).statistics,
            tmp_path / "mapped.ref",
        )
        assert (tmp_path / "eager.ref").read_bytes() == (
            tmp_path / "mapped.ref"
        ).read_bytes()

    def test_index_access_never_decodes_sketches(
        self, saved_with_index, monkeypatch
    ):
        """The mmap path's whole point: an index-only cold start must
        not touch (or checksum) the dominant sketch bytes."""
        import repro.storage.stats_io as stats_io

        path, __ = saved_with_index
        bundle = load_statistics_bundle(path, mmap=True)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("sketch decode ran for an index access")

        monkeypatch.setattr(stats_io, "_statistics_from_manifest", boom)
        monkeypatch.setattr(stats_io, "_verify_sketch_section", boom)
        assert bundle.index is not None

    def test_index_arrays_are_readonly_views(self, saved_with_index):
        path, __ = saved_with_index
        bundle = load_statistics_bundle(path, mmap=True)
        for name, column in bundle.index.columns.items():
            state = column.array_state()
            assert all(
                not arr.flags.writeable for arr in state.values()
            ), name
        with pytest.raises(ValueError, match="read-only"):
            next(iter(bundle.index.columns.values())).array_state()[
                "stats"
            ][0, 0] = 1.0

    def test_mapped_index_drives_identical_features(self, saved_with_index):
        path, __ = saved_with_index
        eager = load_statistics_bundle(path)
        mapped = load_statistics_bundle(path, mmap=True)
        np.testing.assert_array_equal(
            FeatureBuilder(
                mapped.statistics, ("cat", "d"), index=mapped.index
            ).static_matrix,
            FeatureBuilder(
                eager.statistics, ("cat", "d"), index=eager.index
            ).static_matrix,
        )

    def test_transient_map_failures_retried(self, saved_with_index):
        path, __ = saved_with_index
        io = FaultyIO(fail_reads=2)
        bundle = load_statistics_bundle(path, io=io, mmap=True)
        assert io.reads_failed == 2
        assert len(io.sleeps) == 2  # backoff recorded, never slept
        assert bundle.index is not None

    def test_manifest_rot_still_rejected_eagerly(
        self, saved_with_index, tmp_path
    ):
        """Laziness never extends to the manifest: its CRC (and the
        footer) are checked at load, before any section is touched."""
        path, __ = saved_with_index
        raw = bytearray(path.read_bytes())
        header_size = int.from_bytes(raw[:8], "little")
        marker = raw[8 : 8 + header_size].find(b'"num_rows":')
        assert marker >= 0
        digit = 8 + marker + len(b'"num_rows": ')
        raw[digit] = ord("9") if raw[digit] != ord("9") else ord("8")
        bad = tmp_path / "rot.ps3stats"
        bad.write_bytes(bytes(raw))
        with pytest.raises(CorruptBundleError, match="manifest checksum"):
            load_statistics_bundle(bad, mmap=True)

    def test_corrupt_sketch_raises_at_first_statistics_touch(
        self, saved_with_index, tmp_path
    ):
        path, __ = saved_with_index
        raw = bytearray(path.read_bytes())
        header_size = int.from_bytes(raw[:8], "little")
        raw[8 + header_size + 3] ^= 0x40  # inside the sketch region
        bad = tmp_path / "blobrot.ps3stats"
        bad.write_bytes(bytes(raw))
        bundle = load_statistics_bundle(bad, mmap=True)  # no error yet
        assert bundle.index is not None  # index section is clean
        with pytest.raises(CorruptBundleError, match="sketch section"):
            bundle.statistics

    def test_corrupt_index_degrades_at_first_index_touch(
        self, saved_with_index, tiny_stats, tmp_path
    ):
        path, __ = saved_with_index

        def clobber(manifest):
            column = next(iter(manifest["index"]["columns"]))
            manifest["index"]["columns"][column]["stats"][0] = 10**9

        bad = _rewrite_manifest(path, tmp_path / "oob.ps3stats", clobber)
        with warnings.catch_warnings():
            # Loading must stay silent — the damage is not looked at yet.
            warnings.simplefilter("error", DegradedLoadWarning)
            bundle = load_statistics_bundle(bad, mmap=True)
        with pytest.warns(DegradedLoadWarning) as caught:
            assert bundle.index is None
        assert caught[0].message.reason == "index-corrupt"
        # The statistics are intact — the index is a rebuildable cache.
        assert bundle.statistics.num_partitions == tiny_stats.num_partitions


class TestAppendAfterColdLoad:
    """Regression: appends must keep working after an mmap cold load.

    The mapped index adopts *read-only* zero-copy arrays, so any append
    path that wrote into them in place would raise ``ValueError``
    here; ``ColumnarSketchIndex.extend`` must allocate fresh arrays
    (copy-on-append) and land bit-identical to a from-scratch build."""

    def test_extend_after_mmap_load_matches_scratch_build(
        self, saved_with_index, rng
    ):
        path, __ = saved_with_index
        bundle = load_statistics_bundle(path, mmap=True)
        stats, index = bundle.statistics, bundle.index
        before = stats.num_partitions
        n = 40
        batch = {
            "x": rng.exponential(10.0, n) + 1.0,
            "y": rng.normal(0.0, 5.0, n),
            "d": rng.integers(0, 100, n),
            "cat": rng.choice(["a", "b", "c", "dd"], n),
            "tag": rng.choice([f"t{i:03d}" for i in range(300)], n),
        }
        replay_batch_into_statistics(stats, batch, index)
        assert stats.num_partitions == before + 1
        assert index.num_partitions == stats.num_partitions
        _assert_indexes_identical(ColumnarSketchIndex.build(stats), index)

    def test_double_extend_stays_consistent(self, saved_with_index, rng):
        """Two appends in a row: the second extends arrays the first
        already copied — still bit-identical to scratch."""
        path, __ = saved_with_index
        bundle = load_statistics_bundle(path, mmap=True)
        stats, index = bundle.statistics, bundle.index
        for size in (25, 31):
            batch = {
                "x": rng.exponential(10.0, size) + 1.0,
                "y": rng.normal(0.0, 5.0, size),
                "d": rng.integers(0, 100, size),
                "cat": rng.choice(["a", "b", "c", "dd"], size),
                "tag": rng.choice([f"t{i:03d}" for i in range(300)], size),
            }
            replay_batch_into_statistics(stats, batch, index)
        _assert_indexes_identical(ColumnarSketchIndex.build(stats), index)
