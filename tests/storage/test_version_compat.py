"""Backward compatibility against *frozen* pre-v3 bundle bytes.

``fixtures/v1.ps3stats`` and ``fixtures/v2.ps3stats`` were written by
the v2-era tree (see ``fixtures/make_fixtures.py``) and committed as
binary artifacts, so the v3 loader is tested against real old bytes —
not old bytes synthesized by new code. ``fixtures/expected.json``
records the facts both files must decode to.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.storage import (
    StatisticsStore,
    load_statistics_bundle,
    save_statistics,
)
from repro.storage.stats_io import _read_manifest

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def expected():
    return json.loads((FIXTURES / "expected.json").read_text())


def _assert_statistics_match(stats, expected):
    assert stats.num_partitions == expected["num_partitions"]
    assert list(stats.schema.names) == expected["columns"]
    assert [p.num_rows for p in stats.partitions] == expected["num_rows"]
    assert (
        list(stats.global_heavy_hitters["cat"])
        == expected["global_heavy_hitters_cat"]
    )
    for p, mean in enumerate(expected["x_means"]):
        assert stats.column_stats(p, "x").measures.mean == pytest.approx(
            mean, rel=1e-12
        )


class TestFrozenV2:
    def test_loads_with_index_and_plan_keys(self, expected):
        bundle = load_statistics_bundle(FIXTURES / "v2.ps3stats")
        _assert_statistics_match(bundle.statistics, expected)
        assert bundle.index is not None
        assert bundle.index.num_partitions == expected["num_partitions"]
        assert bundle.plan_cache_keys == ("frozen-plan-key",)
        # Pre-v3 bundles predate the journal: the stamp defaults to 0.
        assert bundle.wal_applied_seq == 0

    def test_manifest_really_is_version_2(self):
        manifest, __ = _read_manifest(FIXTURES / "v2.ps3stats", io=None)
        assert manifest["version"] == 2
        assert "sections" not in manifest


class TestFrozenV1:
    def test_loads_with_index_none(self, expected):
        bundle = load_statistics_bundle(FIXTURES / "v1.ps3stats")
        _assert_statistics_match(bundle.statistics, expected)
        assert bundle.index is None
        assert bundle.plan_cache_keys == ()


class TestV3Roundtrip:
    def test_resave_load_resave_is_bit_identical(self, tmp_path):
        """v2 bytes upgraded to v3 round-trip deterministically."""
        bundle = load_statistics_bundle(FIXTURES / "v2.ps3stats")
        first = tmp_path / "first.ps3stats"
        save_statistics(
            bundle.statistics,
            first,
            index=bundle.index,
            plan_cache_keys=bundle.plan_cache_keys,
        )
        reloaded = load_statistics_bundle(first)
        second = tmp_path / "second.ps3stats"
        save_statistics(
            reloaded.statistics,
            second,
            index=reloaded.index,
            plan_cache_keys=reloaded.plan_cache_keys,
        )
        assert first.read_bytes() == second.read_bytes()
        manifest, __ = _read_manifest(first, io=None)
        assert manifest["version"] == 3
        assert set(manifest["sections"]) >= {"sketches"}

    def test_checkpoint_of_upgraded_bundle_round_trips(self, tmp_path):
        """Old bytes -> store checkpoint -> recovery: still bit-stable."""
        bundle = load_statistics_bundle(FIXTURES / "v2.ps3stats")
        store = StatisticsStore(tmp_path)
        store.checkpoint(
            bundle.statistics,
            index=bundle.index,
            plan_cache_keys=bundle.plan_cache_keys,
        )
        first = (tmp_path / "stats.ps3stats").read_bytes()
        stats, index = StatisticsStore(tmp_path).load_statistics()
        StatisticsStore(tmp_path).checkpoint(
            stats, index=index, plan_cache_keys=bundle.plan_cache_keys
        )
        assert (tmp_path / "stats.ps3stats").read_bytes() == first
