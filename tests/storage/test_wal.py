"""The append write-ahead log: framing, replay, and damage handling.

The parity contract (append → crash → replay is bit-identical to append
without a crash) is pinned here at the statistics level; the full
crash-point enumeration lives in ``test_killpoints.py``.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.errors import DegradedLoadWarning, StorageError, WalReplayError
from repro.sketches.builder import append_partition_statistics
from repro.sketches.columnar import ColumnarSketchIndex
from repro.storage import (
    WriteAheadLog,
    replay_batch_into_statistics,
    save_statistics,
)
from repro.storage.faults import FaultyIO


@pytest.fixture
def batch(rng):
    n = 40
    return {
        "x": rng.exponential(10.0, n) + 1.0,
        "y": rng.normal(0.0, 5.0, n),
        "d": rng.integers(0, 100, n),
        "cat": rng.choice(["a", "b", "c", "dd"], n),
        "tag": rng.choice([f"t{i:03d}" for i in range(300)], n),
    }


def _bundle_bytes(stats, path, index=None):
    save_statistics(stats, path, index=index)
    return path.read_bytes()


class TestRoundtrip:
    def test_columns_and_meta_survive_exactly(self, tmp_path, batch):
        wal = WriteAheadLog(tmp_path / "w.ps3wal")
        seq = wal.append(batch, meta={"rows": 40, "seed": 7})
        assert seq == 1
        (replayed,) = WriteAheadLog(tmp_path / "w.ps3wal").replay()
        assert replayed.seq == 1
        assert replayed.meta == {"rows": 40, "seed": 7}
        assert set(replayed.columns) == set(batch)
        for name, values in batch.items():
            arr = np.asarray(values)
            assert replayed.columns[name].dtype == arr.dtype, name
            np.testing.assert_array_equal(replayed.columns[name], arr)

    def test_sequence_numbers_increment(self, tmp_path, batch):
        wal = WriteAheadLog(tmp_path / "w.ps3wal")
        assert [wal.append(batch) for __ in range(3)] == [1, 2, 3]
        assert [b.seq for b in wal.replay(after_seq=1)] == [2, 3]

    def test_truncate_preserves_the_sequence_counter(self, tmp_path, batch):
        wal = WriteAheadLog(tmp_path / "w.ps3wal")
        wal.append(batch)
        wal.append(batch)
        wal.truncate()
        fresh = WriteAheadLog(tmp_path / "w.ps3wal")
        assert fresh.replay() == []
        # Sequence numbers never regress across checkpoints.
        assert fresh.append(batch) == 3

    def test_missing_file_replays_empty(self, tmp_path):
        assert WriteAheadLog(tmp_path / "none.ps3wal").replay() == []

    def test_object_dtype_rejected_at_append(self, tmp_path, batch):
        wal = WriteAheadLog(tmp_path / "w.ps3wal")
        batch["cat"] = np.array(["a", 3.5, None], dtype=object)
        with pytest.raises(StorageError, match="object dtype"):
            wal.append(batch)


class TestDamage:
    def test_torn_tail_dropped_with_warning(self, tmp_path, batch):
        path = tmp_path / "w.ps3wal"
        wal = WriteAheadLog(path)
        wal.append(batch, meta={"n": 1})
        intact_size = path.stat().st_size
        wal.append(batch, meta={"n": 2})
        # Tear the second record mid-payload, as a crash would.
        raw = path.read_bytes()
        path.write_bytes(raw[: intact_size + (len(raw) - intact_size) // 2])
        with pytest.warns(DegradedLoadWarning) as caught:
            batches = WriteAheadLog(path).replay()
        assert caught[0].message.reason == "wal-torn-tail"
        assert [b.meta["n"] for b in batches] == [1]

    def test_torn_tail_still_advances_the_counter(self, tmp_path, batch):
        path = tmp_path / "w.ps3wal"
        wal = WriteAheadLog(path)
        wal.append(batch)
        intact_size = path.stat().st_size
        wal.append(batch)
        raw = path.read_bytes()
        path.write_bytes(raw[: intact_size + 10])
        fresh = WriteAheadLog(path)
        with pytest.warns(DegradedLoadWarning):
            fresh.replay()
        # The next append must not reuse the torn record's slot... the
        # torn record was never acknowledged, so seq 2 is free again.
        assert fresh.append(batch) == 2

    def test_bitrot_before_intact_records_refuses_replay(
        self, tmp_path, batch
    ):
        path = tmp_path / "w.ps3wal"
        wal = WriteAheadLog(path)
        wal.append(batch)
        first_size = path.stat().st_size
        wal.append(batch)
        raw = bytearray(path.read_bytes())
        raw[first_size - 10] ^= 0x40  # inside record 1's payload
        path.write_bytes(bytes(raw))
        with pytest.raises(WalReplayError, match="checksum"):
            WriteAheadLog(path).replay()

    def test_corrupt_header_refuses_replay(self, tmp_path, batch):
        path = tmp_path / "w.ps3wal"
        WriteAheadLog(path).append(batch)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(WalReplayError, match="header"):
            WriteAheadLog(path).replay()

    def test_unsynced_append_is_lost_on_crash(self, tmp_path, batch):
        path = tmp_path / "w.ps3wal"
        WriteAheadLog(path).append(batch)
        io = FaultyIO(crash_at_op=1)  # record write lands, fsync never runs
        wal = WriteAheadLog(path, io=io)
        with pytest.raises(BaseException, match="simulated crash"):
            wal.append(batch)
        assert len(WriteAheadLog(path).replay()) == 1


class TestReplayParity:
    def test_replay_matches_live_append_bit_for_bit(
        self, tiny_stats, tiny_ptable, batch, tmp_path
    ):
        """Journal replay runs the same seal path as a live append."""
        live = copy.deepcopy(tiny_stats)
        recovered = copy.deepcopy(tiny_stats)
        live_index = ColumnarSketchIndex.build(live)
        recovered_index = ColumnarSketchIndex.build(recovered)

        # Live timeline: seal the batch exactly as PS3.append does.
        from repro.engine.layout import append_rows

        grown = append_rows(tiny_ptable, batch)
        append_partition_statistics(live, grown[grown.num_partitions - 1])
        live_index.extend(live)

        # Crashed timeline: the batch went through the journal.
        wal = WriteAheadLog(tmp_path / "w.ps3wal")
        wal.append(batch)
        for replayed in WriteAheadLog(tmp_path / "w.ps3wal").replay():
            replay_batch_into_statistics(
                recovered, replayed.columns, recovered_index
            )

        assert _bundle_bytes(
            live, tmp_path / "live.ps3stats", live_index
        ) == _bundle_bytes(
            recovered, tmp_path / "recovered.ps3stats", recovered_index
        )
