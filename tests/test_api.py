"""Unit tests for the high-level PS3 facade."""

import numpy as np
import pytest

from repro.api import PS3, answer_with_selection
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.combiner import WeightedChoice
from repro.engine.expressions import col
from repro.engine.predicates import Comparison
from repro.engine.query import Query
from repro.errors import ConfigError, NotFittedError


@pytest.fixture(scope="module")
def query():
    return Query(
        [sum_of(col("l_extendedprice")), avg_of(col("l_quantity"))],
        Comparison("l_quantity", ">", 20.0),
        ("l_returnflag",),
    )


class TestLifecycle:
    def test_query_before_fit_raises(self, tpch_ptable, tpch_workload):
        system = PS3(tpch_ptable, tpch_workload)
        with pytest.raises(NotFittedError):
            system.query(Query([count_star()]), budget_partitions=2)

    def test_fit_returns_self(self, trained_ps3):
        assert trained_ps3.model is not None
        assert trained_ps3.picker is not None

    def test_storage_overhead_positive(self, trained_ps3):
        assert trained_ps3.storage_overhead_bytes() > 0


class TestBudgets:
    def test_exactly_one_budget_required(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query)
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_partitions=2, budget_fraction=0.5)

    def test_fraction_rounds_to_partitions(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(query, budget_fraction=0.25)
        assert answer.budget == round(0.25 * tpch_ptable.num_partitions)

    def test_invalid_fraction(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_fraction=0.0)
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_fraction=1.5)

    def test_invalid_partition_count(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_partitions=0)


class TestAnswers:
    def test_full_budget_is_exact(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(
            query, budget_partitions=tpch_ptable.num_partitions
        )
        exact = trained_ps3.execute_exact(query)
        assert set(answer.groups) == set(exact)
        for key in exact:
            np.testing.assert_allclose(answer.groups[key], exact[key])
        report = trained_ps3.evaluate(query, answer)
        assert report.avg_relative_error == pytest.approx(0.0, abs=1e-12)

    def test_partial_budget_reasonable(self, trained_ps3, query):
        answer = trained_ps3.query(query, budget_fraction=0.5)
        report = trained_ps3.evaluate(query, answer)
        assert report.avg_relative_error < 0.6

    def test_answer_metadata(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(query, budget_partitions=4)
        assert answer.num_partitions == tpch_ptable.num_partitions
        assert 0 < answer.fraction_read <= 4 / tpch_ptable.num_partitions + 1e-9
        assert answer.aggregate_labels() == (
            "SUM(l_extendedprice)",
            "AVG(l_quantity)",
        )

    def test_query_only_reads_selected_partitions(self, trained_ps3, query):
        answer = trained_ps3.query(query, budget_partitions=3)
        assert len(answer.selection.selection) <= 3


class TestAnswerWithSelection:
    def test_matches_manual_combination(self, tpch_ptable, query):
        selection = [WeightedChoice(0, 2.0), WeightedChoice(5, 1.0)]
        final = answer_with_selection(tpch_ptable, query, selection)
        assert final  # some groups found
        for vec in final.values():
            assert vec.shape == (2,)
