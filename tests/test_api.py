"""Unit tests for the high-level PS3 facade."""

import numpy as np
import pytest

from repro.api import PS3, answer_with_selection
from repro.engine.aggregates import avg_of, count_star, sum_of
from repro.engine.combiner import WeightedChoice
from repro.engine.expressions import col
from repro.engine.predicates import Comparison
from repro.engine.query import Query
from repro.errors import ConfigError, NotFittedError


@pytest.fixture(scope="module")
def query():
    return Query(
        [sum_of(col("l_extendedprice")), avg_of(col("l_quantity"))],
        Comparison("l_quantity", ">", 20.0),
        ("l_returnflag",),
    )


class TestLifecycle:
    def test_query_before_fit_raises(self, tpch_ptable, tpch_workload):
        system = PS3(tpch_ptable, tpch_workload)
        with pytest.raises(NotFittedError):
            system.query(Query([count_star()]), budget_partitions=2)

    def test_fit_returns_self(self, trained_ps3):
        assert trained_ps3.model is not None
        assert trained_ps3.picker is not None

    def test_storage_overhead_positive(self, trained_ps3):
        assert trained_ps3.storage_overhead_bytes() > 0


class TestBudgets:
    def test_exactly_one_budget_required(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query)
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_partitions=2, budget_fraction=0.5)

    def test_fraction_rounds_to_partitions(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(query, budget_fraction=0.25)
        assert answer.budget == round(0.25 * tpch_ptable.num_partitions)

    def test_invalid_fraction(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_fraction=0.0)
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_fraction=1.5)

    def test_invalid_partition_count(self, trained_ps3, query):
        with pytest.raises(ConfigError):
            trained_ps3.query(query, budget_partitions=0)


class TestAnswers:
    def test_full_budget_is_exact(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(
            query, budget_partitions=tpch_ptable.num_partitions
        )
        exact = trained_ps3.execute_exact(query)
        assert set(answer.groups) == set(exact)
        for key in exact:
            np.testing.assert_allclose(answer.groups[key], exact[key])
        report = trained_ps3.evaluate(query, answer)
        assert report.avg_relative_error == pytest.approx(0.0, abs=1e-12)

    def test_partial_budget_reasonable(self, trained_ps3, query):
        answer = trained_ps3.query(query, budget_fraction=0.5)
        report = trained_ps3.evaluate(query, answer)
        assert report.avg_relative_error < 0.6

    def test_answer_metadata(self, trained_ps3, query, tpch_ptable):
        answer = trained_ps3.query(query, budget_partitions=4)
        assert answer.num_partitions == tpch_ptable.num_partitions
        assert 0 < answer.fraction_read <= 4 / tpch_ptable.num_partitions + 1e-9
        assert answer.aggregate_labels() == (
            "SUM(l_extendedprice)",
            "AVG(l_quantity)",
        )

    def test_query_only_reads_selected_partitions(self, trained_ps3, query):
        answer = trained_ps3.query(query, budget_partitions=3)
        assert len(answer.selection.selection) <= 3


class TestAnswerWithSelection:
    def test_matches_manual_combination(self, tpch_ptable, query):
        selection = [WeightedChoice(0, 2.0), WeightedChoice(5, 1.0)]
        final = answer_with_selection(tpch_ptable, query, selection)
        assert final  # some groups found
        for vec in final.values():
            assert vec.shape == (2,)

    def test_subset_path_bit_identical_to_full_table_path(
        self, tpch_ptable, query
    ):
        """Regression: the helper now executes only the selected
        partitions (subset gather, remapped local indices). The answer
        must match the historical full-table pass bit for bit."""
        from repro.engine.combiner import estimate
        from repro.engine.executor import compute_partition_answers

        selection = [
            WeightedChoice(9, 1.5),
            WeightedChoice(2, 0.75),
            WeightedChoice(21, 2.0),
        ]
        subset = answer_with_selection(tpch_ptable, query, selection)
        full = estimate(
            query,
            compute_partition_answers(tpch_ptable, query),
            selection,
        )
        assert list(subset.keys()) == list(full.keys())
        for key in full:
            assert subset[key].tobytes() == full[key].tobytes(), key

    def test_scalar_path_unchanged(self, tpch_ptable, query):
        selection = [WeightedChoice(3, 1.0), WeightedChoice(11, 0.5)]
        batched = answer_with_selection(
            tpch_ptable, query, selection, batched=True
        )
        scalar = answer_with_selection(
            tpch_ptable, query, selection, batched=False
        )
        assert list(batched.keys()) == list(scalar.keys())
        for key in scalar:
            assert batched[key].tobytes() == scalar[key].tobytes(), key
