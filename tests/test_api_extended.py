"""Extended API tests: feature selection in fit, reporting helpers."""

import pytest

from repro.api import PS3
from repro.bench.reporting import emit, format_table, results_dir
from repro.datasets.registry import get_dataset
from repro.workload.generator import QueryGenerator


class TestFitWithFeatureSelection:
    @pytest.fixture(scope="class")
    def selected_system(self):
        spec = get_dataset("kdd")
        ptable = spec.build(3000, 12, seed=5)
        workload = spec.workload()
        generator = QueryGenerator(workload, ptable.table, seed=6)
        train = generator.sample_queries(10)
        return PS3(ptable, workload).fit(train, feature_selection_rounds=1)

    def test_exclusions_recorded_on_model(self, selected_system):
        # Feature selection ran; exclusions are a (possibly empty) frozenset
        # that never contains the load-bearing selectivity_upper family.
        excluded = selected_system.model.excluded_families
        assert isinstance(excluded, frozenset)
        assert "selectivity_upper" not in excluded

    def test_picker_clusters_on_reduced_features(self, selected_system):
        indices = selected_system.model.clustering_feature_indices()
        dimension = selected_system.feature_builder.schema.dimension
        assert 0 < indices.size <= dimension

    def test_queries_still_answerable(self, selected_system):
        generator = QueryGenerator(
            selected_system.workload, selected_system.ptable.table, seed=77
        )
        query = generator.sample_query()
        answer = selected_system.query(query, budget_fraction=0.5)
        report = selected_system.evaluate(query, answer)
        assert report.avg_relative_error < 1.5


class TestReporting:
    def test_emit_writes_result_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        emit("unit_test_report", "hello\nworld")
        captured = capsys.readouterr().out
        assert "unit_test_report" in captured
        assert (tmp_path / "unit_test_report.txt").read_text() == "hello\nworld\n"

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nested"))
        path = results_dir()
        assert path == tmp_path / "nested"
        assert path.is_dir()

    def test_format_table_handles_mixed_types(self):
        text = format_table(
            ["a", "b", "c"],
            [["row", 1.0, None], ["other", 123456.789, 0.00001]],
        )
        assert "1.235e+05" in text or "123456.789" in text
        assert "None" in text

    def test_format_table_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text and "headers" in text


class TestPickerDeterminism:
    def test_identical_selections_across_instances(self):
        spec = get_dataset("aria")
        ptable = spec.build(2500, 10, seed=8)
        workload = spec.workload()
        generator = QueryGenerator(workload, ptable.table, seed=9)
        train = generator.sample_queries(8)
        query = generator.sample_query()

        first = PS3(ptable, workload).fit(train)
        second = PS3(ptable, workload).fit(train)
        a = first.picker.select(query, 4)
        b = second.picker.select(query, 4)
        assert [(c.partition, c.weight) for c in a.selection] == [
            (c.partition, c.weight) for c in b.selection
        ]

    def test_weight_mass_invariant_across_budgets(self):
        spec = get_dataset("aria")
        ptable = spec.build(2500, 10, seed=8)
        workload = spec.workload()
        generator = QueryGenerator(workload, ptable.table, seed=9)
        system = PS3(ptable, workload).fit(generator.sample_queries(8))
        query = generator.sample_query()
        features = system.feature_builder.features_for_query(query)
        passing = features.passing_partitions().size
        for budget in (1, 3, 5, 10):
            result = system.picker.select(query, budget)
            if result.selection:
                total = sum(c.weight for c in result.selection)
                assert total == pytest.approx(float(passing))
