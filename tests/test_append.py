"""Tests for append-only ingest: new partitions, frozen features, drift."""

import numpy as np
import pytest

from repro.api import PS3
from repro.datasets.registry import get_dataset
from repro.engine.layout import append_rows
from repro.errors import ConfigError
from repro.workload import QueryGenerator


@pytest.fixture
def fresh_ps3():
    """A small, freshly trained system the append tests may mutate."""
    spec = get_dataset("kdd")
    ptable = spec.build(4000, 16, seed=9)
    workload = spec.workload()
    generator = QueryGenerator(workload, ptable.table, seed=2)
    train, test = generator.train_test_split(10, 3)
    system = PS3(ptable, workload).fit(train)
    return system, test, spec


def _new_rows(spec, num_rows, seed):
    table = spec.generate(num_rows, seed)
    return dict(table.columns)


class TestAppendRows:
    def test_appends_one_partition(self, fresh_ps3):
        system, __, spec = fresh_ps3
        before = system.ptable.num_partitions
        index = system.append(_new_rows(spec, 250, seed=100))
        assert index == before
        assert system.ptable.num_partitions == before + 1
        assert system.statistics.num_partitions == before + 1

    def test_appended_rows_visible_to_exact_execution(self, fresh_ps3):
        system, test, spec = fresh_ps3
        query = test[0]
        before = system.execute_exact(query)
        system.append(_new_rows(spec, 250, seed=101))
        after = system.execute_exact(query)
        before_total = sum(float(np.sum(v)) for v in before.values())
        after_total = sum(float(np.sum(v)) for v in after.values())
        assert after_total != pytest.approx(before_total) or not before

    def test_trained_picker_can_select_new_partition(self, fresh_ps3):
        system, test, spec = fresh_ps3
        before = system.ptable.num_partitions
        for seed in range(4):
            system.append(_new_rows(spec, 250, seed=200 + seed))
        answer = system.query(test[0], budget_fraction=1.0)
        selected = {c.partition for c in answer.selection.selection}
        assert any(p >= before for p in selected)

    def test_feature_schema_frozen_across_appends(self, fresh_ps3):
        system, test, spec = fresh_ps3
        dim_before = system.feature_builder.schema.dimension
        system.append(_new_rows(spec, 250, seed=102))
        assert system.feature_builder.schema.dimension == dim_before
        features = system.feature_builder.features_for_query(test[0])
        assert features.matrix.shape == (
            system.ptable.num_partitions,
            dim_before,
        )

    def test_approximate_answers_still_reasonable(self, fresh_ps3):
        system, test, spec = fresh_ps3
        for seed in range(3):
            system.append(_new_rows(spec, 250, seed=300 + seed))
        answer = system.query(test[0], budget_fraction=0.5)
        report = system.evaluate(test[0], answer)
        assert report.avg_relative_error < 1.0

    def test_mismatched_columns_rejected(self, fresh_ps3):
        system, __, spec = fresh_ps3
        rows = _new_rows(spec, 100, seed=1)
        rows.pop("count")
        with pytest.raises(ConfigError, match="mismatch"):
            system.append(rows)

    def test_empty_append_rejected(self, fresh_ps3):
        system, __, spec = fresh_ps3
        rows = {k: v[:0] for k, v in _new_rows(spec, 10, seed=1).items()}
        with pytest.raises(ConfigError, match="non-empty"):
            system.append(rows)


class TestAppendRowsHelper:
    def test_existing_partitions_untouched(self, tiny_ptable):
        new = {
            "x": np.ones(50),
            "y": np.zeros(50),
            "d": np.arange(50),
            "cat": np.array(["a"] * 50),
            "tag": np.array(["t0"] * 50),
        }
        grown = append_rows(tiny_ptable, new)
        assert grown.num_partitions == tiny_ptable.num_partitions + 1
        np.testing.assert_array_equal(
            grown[0].column("x"), tiny_ptable[0].column("x")
        )
        assert grown[grown.num_partitions - 1].num_rows == 50


class TestStaleness:
    def test_fresh_system_not_stale(self, fresh_ps3):
        system, __, spec = fresh_ps3
        report = system.staleness()
        assert report.partitions_added == 0
        assert not report.needs_retraining

    def test_appends_accumulate_staleness(self, fresh_ps3):
        system, __, spec = fresh_ps3
        for seed in range(5):  # 5 appends onto 16 partitions -> > 20%
            system.append(_new_rows(spec, 250, seed=400 + seed))
        report = system.staleness()
        assert report.partitions_added == 5
        assert report.fraction_new == pytest.approx(5 / 21)
        assert report.needs_retraining

    def test_drift_bounded(self, fresh_ps3):
        system, __, spec = fresh_ps3
        system.append(_new_rows(spec, 250, seed=500))
        report = system.staleness()
        assert 0.0 <= report.heavy_hitter_drift <= 1.0
