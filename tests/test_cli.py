"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    out = tmp_path_factory.mktemp("deploy")
    code = main(
        [
            "train",
            "--dataset", "kdd",
            "--rows", "3000",
            "--partitions", "12",
            "--seed", "4",
            "--train-queries", "8",
            "--out", str(out),
        ]
    )
    assert code == 0
    return out


class TestInfo:
    def test_lists_datasets(self, capsys):
        assert main(["info"]) == 0
        captured = capsys.readouterr().out
        for dataset in ("tpch", "tpcds", "aria", "kdd"):
            assert dataset in captured


class TestTrain:
    def test_writes_deployment_files(self, deployment):
        assert (deployment / "manifest.json").exists()
        assert (deployment / "stats.ps3stats").exists()
        assert (deployment / "model.json").exists()

    def test_manifest_contents(self, deployment):
        manifest = json.loads((deployment / "manifest.json").read_text())
        assert manifest["dataset"] == "kdd"
        assert manifest["partitions"] == 12
        assert manifest["layout"] == "count"  # the dataset default

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "nope", "--out", str(tmp_path)])


class TestQuery:
    def test_answers_sql(self, deployment, capsys):
        code = main(
            [
                "query",
                "--deploy", str(deployment),
                "--budget", "0.5",
                "--exact",
                "SELECT SUM(src_bytes), COUNT(*) GROUP BY protocol_type",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "SUM(src_bytes)" in captured
        assert "avg rel err" in captured
        assert "partitions" in captured

    def test_absolute_budget(self, deployment, capsys):
        code = main(
            [
                "query",
                "--deploy", str(deployment),
                "--budget", "3",
                "--exact",
                "SELECT COUNT(*)",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        # A predicate-free COUNT(*) makes all partitions look identical,
        # so clustering may collapse to fewer reads than the budget — the
        # weighted estimate stays exact regardless.
        assert "/12 partitions" in captured
        assert "avg rel err 0.0000" in captured

    def test_bad_sql_reports_error(self, deployment, capsys):
        code = main(
            ["query", "--deploy", str(deployment), "SELECT FROM nothing"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_reports_mean_errors(self, deployment, capsys):
        code = main(
            [
                "evaluate",
                "--deploy", str(deployment),
                "--budget", "0.5",
                "--queries", "4",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "avg rel err" in captured
        assert "4 random workload queries" in captured


class TestPersistedPlanKeys:
    """`train` scopes the saved plan keys to its own workload."""

    def test_keys_match_training_workload_only(self, deployment):
        from repro.datasets import get_dataset
        from repro.storage import load_statistics_bundle
        from repro.workload.generator import QueryGenerator

        bundle = load_statistics_bundle(deployment / "stats.ps3stats")
        spec = get_dataset("kdd")
        ptable = spec.build(3000, 12, spec.default_layout, seed=4)
        generator = QueryGenerator(spec.workload(), ptable.table, seed=5)
        expected = sorted(
            {
                repr(query.predicate)
                for query in generator.sample_queries(8)
                if query.predicate is not None
            }
        )
        assert list(bundle.plan_cache_keys) == expected
        # Not the process-global shared cache: the fixture's training run
        # compiled plans into SHARED_PLAN_CACHE from other suites too.
        assert bundle.plan_cache_keys
