"""Tests for the command-line interface."""

import json
import shutil

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    out = tmp_path_factory.mktemp("deploy")
    code = main(
        [
            "train",
            "--dataset", "kdd",
            "--rows", "3000",
            "--partitions", "12",
            "--seed", "4",
            "--train-queries", "8",
            "--out", str(out),
        ]
    )
    assert code == 0
    return out


class TestInfo:
    def test_lists_datasets(self, capsys):
        assert main(["info"]) == 0
        captured = capsys.readouterr().out
        for dataset in ("tpch", "tpcds", "aria", "kdd"):
            assert dataset in captured


class TestTrain:
    def test_writes_deployment_files(self, deployment):
        assert (deployment / "manifest.json").exists()
        assert (deployment / "stats.ps3stats").exists()
        assert (deployment / "model.json").exists()

    def test_manifest_contents(self, deployment):
        manifest = json.loads((deployment / "manifest.json").read_text())
        assert manifest["dataset"] == "kdd"
        assert manifest["partitions"] == 12
        assert manifest["layout"] == "count"  # the dataset default

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "nope", "--out", str(tmp_path)])


class TestQuery:
    def test_answers_sql(self, deployment, capsys):
        code = main(
            [
                "query",
                "--deploy", str(deployment),
                "--budget", "0.5",
                "--exact",
                "SELECT SUM(src_bytes), COUNT(*) GROUP BY protocol_type",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "SUM(src_bytes)" in captured
        assert "avg rel err" in captured
        assert "partitions" in captured

    def test_absolute_budget(self, deployment, capsys):
        code = main(
            [
                "query",
                "--deploy", str(deployment),
                "--budget", "3",
                "--exact",
                "SELECT COUNT(*)",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        # A predicate-free COUNT(*) makes all partitions look identical,
        # so clustering may collapse to fewer reads than the budget — the
        # weighted estimate stays exact regardless.
        assert "/12 partitions" in captured
        assert "avg rel err 0.0000" in captured

    def test_bad_sql_reports_error(self, deployment, capsys):
        code = main(
            ["query", "--deploy", str(deployment), "SELECT FROM nothing"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_reports_mean_errors(self, deployment, capsys):
        code = main(
            [
                "evaluate",
                "--deploy", str(deployment),
                "--budget", "0.5",
                "--queries", "4",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "avg rel err" in captured
        assert "4 random workload queries" in captured


class TestAppendCheckpoint:
    """The WAL-backed append/checkpoint lifecycle, including recovery."""

    QUERY = "SELECT COUNT(*) GROUP BY protocol_type"

    @pytest.fixture()
    def deploy(self, deployment, tmp_path):
        """A private copy: these tests mutate the deployment directory."""
        copy = tmp_path / "deploy"
        shutil.copytree(deployment, copy)
        return copy

    def _count_answer(self, capsys, deploy):
        assert main(
            ["query", "--deploy", str(deploy), "--budget", "1.0", self.QUERY]
        ) == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines() if "partitions" not in line]

    def test_append_journals_and_serves(self, deploy, capsys):
        code = main(["append", "--deploy", str(deploy), "--rows", "400"])
        assert code == 0
        assert "WAL record 1" in capsys.readouterr().out
        assert (deploy / "stats.ps3wal").exists()
        manifest = json.loads((deploy / "manifest.json").read_text())
        assert manifest["appends"][0]["rows"] == 400
        assert manifest["appends"][0]["seq"] == 1
        # The appended partition is served (13 partitions now, was 12).
        assert main(
            ["query", "--deploy", str(deploy), "--budget", "1.0", self.QUERY]
        ) == 0
        assert "/13 partitions" in capsys.readouterr().out

    def test_checkpoint_folds_and_answers_identically(self, deploy, capsys):
        assert main(["append", "--deploy", str(deploy), "--rows", "400"]) == 0
        capsys.readouterr()
        before = self._count_answer(capsys, deploy)
        wal_size = (deploy / "stats.ps3wal").stat().st_size
        assert main(["checkpoint", "--deploy", str(deploy)]) == 0
        out = capsys.readouterr().out
        assert "folded 1 journaled batches" in out
        # Journal truncated back to its bare header.
        assert (deploy / "stats.ps3wal").stat().st_size < wal_size
        assert self._count_answer(capsys, deploy) == before

    def test_crash_between_wal_and_manifest_recovers(self, deploy, capsys):
        """An append that died after the fsync but before the manifest
        update: the batch replays from the journal, and the next
        checkpoint reconciles the manifest entry from the record meta."""
        assert main(["append", "--deploy", str(deploy), "--rows", "400"]) == 0
        capsys.readouterr()
        with_entry = self._count_answer(capsys, deploy)
        manifest = json.loads((deploy / "manifest.json").read_text())
        entry = manifest["appends"].pop()  # simulate the crash
        (deploy / "manifest.json").write_text(json.dumps(manifest))
        assert self._count_answer(capsys, deploy) == with_entry
        assert main(["checkpoint", "--deploy", str(deploy)]) == 0
        capsys.readouterr()
        reconciled = json.loads((deploy / "manifest.json").read_text())
        assert reconciled["appends"] == [entry]
        assert self._count_answer(capsys, deploy) == with_entry

    def test_torn_wal_tail_degrades_to_last_batch(self, deploy, capsys):
        assert main(["append", "--deploy", str(deploy), "--rows", "400"]) == 0
        intact = (deploy / "stats.ps3wal").stat().st_size
        assert main(["append", "--deploy", str(deploy), "--rows", "300"]) == 0
        capsys.readouterr()
        raw = (deploy / "stats.ps3wal").read_bytes()
        (deploy / "stats.ps3wal").write_bytes(raw[: intact + 25])
        with pytest.warns(Warning, match="torn"):
            assert main(
                [
                    "query",
                    "--deploy", str(deploy),
                    "--budget", "1.0",
                    self.QUERY,
                ]
            ) == 0
        # Batch 1 survives; the torn batch 2 is dropped.
        assert "/13 partitions" in capsys.readouterr().out

    def test_checkpoint_prunes_orphaned_manifest_entries(
        self, deploy, capsys
    ):
        """An entry whose journal record was lost (bit-rot, not a crash
        — a crash can't leave the entry without the fsynced record) must
        not survive checkpoint, or the next append would reuse its seq
        and the regenerated table would desync from the statistics."""
        assert main(["append", "--deploy", str(deploy), "--rows", "300"]) == 0
        capsys.readouterr()
        # Wipe the record wholesale, leaving a valid empty journal.
        wal = deploy / "stats.ps3wal"
        wal.write_bytes(wal.read_bytes()[:16])
        assert main(["checkpoint", "--deploy", str(deploy)]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 append entries" in out
        manifest = json.loads((deploy / "manifest.json").read_text())
        assert manifest["appends"] == []
        # The freed sequence number is safe to reuse.
        assert main(["append", "--deploy", str(deploy), "--rows", "200"]) == 0
        capsys.readouterr()
        manifest = json.loads((deploy / "manifest.json").read_text())
        assert [e["seq"] for e in manifest["appends"]] == [1]
        assert main(
            ["query", "--deploy", str(deploy), "--budget", "1.0", self.QUERY]
        ) == 0
        assert "/13 partitions" in capsys.readouterr().out
        assert main(["checkpoint", "--deploy", str(deploy)]) == 0
        capsys.readouterr()
        assert self._count_answer(capsys, deploy)


class TestPersistedPlanKeys:
    """`train` scopes the saved plan keys to its own workload."""

    def test_keys_match_training_workload_only(self, deployment):
        from repro.datasets import get_dataset
        from repro.storage import load_statistics_bundle
        from repro.workload.generator import QueryGenerator

        bundle = load_statistics_bundle(deployment / "stats.ps3stats")
        spec = get_dataset("kdd")
        ptable = spec.build(3000, 12, spec.default_layout, seed=4)
        generator = QueryGenerator(spec.workload(), ptable.table, seed=5)
        expected = sorted(
            {
                repr(query.predicate)
                for query in generator.sample_queries(8)
                if query.predicate is not None
            }
        )
        assert list(bundle.plan_cache_keys) == expected
        # Not the process-global shared cache: the fixture's training run
        # compiled plans into SHARED_PLAN_CACHE from other suites too.
        assert bundle.plan_cache_keys
