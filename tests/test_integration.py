"""Integration tests: the full pipeline on real(istic) workloads.

These are the repository's "does the paper's claim hold at all" checks:
PS3 must beat uniform random partition sampling on sorted layouts at
moderate budgets, the selectivity filter must never lose qualifying rows,
and estimates must converge to the truth as the budget grows.
"""

import numpy as np
import pytest

from repro.api import answer_with_selection
from repro.baselines.random_sampling import RandomSampler
from repro.core.metrics import evaluate_errors, mean_report
from repro.engine.combiner import WeightedChoice, estimate
from repro.engine.executor import compute_partition_answers


@pytest.fixture(scope="module")
def test_queries(tpch_queries):
    __, test = tpch_queries
    return test


class TestAccuracyOrdering:
    def test_ps3_beats_random_at_small_budget(
        self, trained_ps3, test_queries, tpch_ptable
    ):
        budget = max(2, tpch_ptable.num_partitions // 8)
        ps3_reports, random_reports = [], []
        for query in test_queries:
            answers = compute_partition_answers(tpch_ptable, query)
            truth = estimate(
                query,
                answers,
                [WeightedChoice(p, 1.0) for p in range(len(answers))],
            )
            selection = trained_ps3.picker.select(query, budget).selection
            ps3_reports.append(
                evaluate_errors(truth, estimate(query, answers, selection))
            )
            for seed in range(5):
                sampler = RandomSampler(tpch_ptable.num_partitions, seed=seed)
                random_selection = sampler.select(query, budget)
                random_reports.append(
                    evaluate_errors(truth, estimate(query, answers, random_selection))
                )
        ps3_error = mean_report(ps3_reports).avg_relative_error
        random_error = mean_report(random_reports).avg_relative_error
        assert ps3_error < random_error

    def test_error_decreases_with_budget(self, trained_ps3, test_queries, tpch_ptable):
        errors = []
        for budget in (2, 6, tpch_ptable.num_partitions):
            reports = []
            for query in test_queries:
                answer = trained_ps3.query(query, budget_partitions=budget)
                reports.append(trained_ps3.evaluate(query, answer))
            errors.append(mean_report(reports).avg_relative_error)
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)
        assert errors[0] >= errors[-1]


class TestFilterSoundness:
    def test_selectivity_filter_never_drops_qualifying_rows(
        self, trained_ps3, test_queries, tpch_ptable
    ):
        """Perfect recall end-to-end: partitions outside the passing set
        must contribute nothing to the true answer."""
        for query in test_queries:
            if query.predicate is None:
                continue
            features = trained_ps3.feature_builder.features_for_query(query)
            passing = set(features.passing_partitions().tolist())
            for partition in tpch_ptable:
                if partition.index in passing:
                    continue
                mask = query.predicate.mask(partition.columns)
                assert not mask.any(), (
                    f"partition {partition.index} dropped but has rows for "
                    f"{query.label()}"
                )


class TestWeightedEstimation:
    def test_full_selection_reproduces_truth_for_all_queries(
        self, trained_ps3, test_queries, tpch_ptable
    ):
        for query in test_queries:
            answers = compute_partition_answers(tpch_ptable, query)
            full = [WeightedChoice(p, 1.0) for p in range(len(answers))]
            combined = estimate(query, answers, full)
            exact = trained_ps3.execute_exact(query)
            assert set(combined) == set(exact)
            for key in exact:
                np.testing.assert_allclose(combined[key], exact[key], rtol=1e-9)

    def test_answer_with_selection_agrees_with_api_path(
        self, trained_ps3, test_queries, tpch_ptable
    ):
        query = test_queries[0]
        result = trained_ps3.picker.select(query, 4)
        via_api = trained_ps3.query(query, budget_partitions=4)
        via_helper = answer_with_selection(
            tpch_ptable, query, result.selection
        )
        assert set(via_api.groups) == set(via_helper)
