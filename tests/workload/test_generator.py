"""Unit tests for workload specs and the random query generator."""

import pytest

from repro.engine.aggregates import AggFunc
from repro.errors import ConfigError
from repro.workload.generator import QueryGenerator
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def generator(tpch_ptable, tpch_workload):
    return QueryGenerator(tpch_workload, tpch_ptable.table, seed=99)


class TestWorkloadSpec:
    def test_validate_against_schema(self, tpch_ptable, tpch_workload):
        tpch_workload.validate_against(tpch_ptable.table.schema)  # no raise

    def test_unknown_column_rejected(self, tpch_ptable):
        spec = WorkloadSpec(
            groupby_universe=("nope",),
            aggregate_columns=("l_quantity",),
            predicate_columns=(),
        )
        with pytest.raises(Exception):
            spec.validate_against(tpch_ptable.table.schema)

    def test_non_numeric_aggregate_rejected(self, tpch_ptable):
        spec = WorkloadSpec(
            groupby_universe=(),
            aggregate_columns=("l_returnflag",),
            predicate_columns=(),
        )
        with pytest.raises(ConfigError):
            spec.validate_against(tpch_ptable.table.schema)

    def test_needs_aggregate_targets(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(
                groupby_universe=(), aggregate_columns=(), predicate_columns=()
            )


class TestGeneratedQueries:
    def test_queries_respect_scope_caps(self, generator, tpch_workload):
        for __ in range(50):
            query = generator.sample_query()
            assert 1 <= len(query.aggregates) <= tpch_workload.max_aggregates
            assert len(query.group_by) <= tpch_workload.max_groupby_columns
            assert (
                query.num_predicate_clauses()
                <= tpch_workload.max_predicate_clauses
            )

    def test_group_by_from_universe(self, generator, tpch_workload):
        universe = set(tpch_workload.groupby_universe)
        for __ in range(50):
            query = generator.sample_query()
            assert set(query.group_by) <= universe

    def test_predicates_from_declared_columns(self, generator, tpch_workload):
        allowed = set(tpch_workload.predicate_columns)
        for __ in range(50):
            query = generator.sample_query()
            assert query.predicate_columns() <= allowed

    def test_aggregate_functions_in_scope(self, generator):
        seen = set()
        for __ in range(80):
            query = generator.sample_query()
            for aggregate in query.aggregates:
                seen.add(aggregate.func)
        assert seen <= {AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG}
        assert AggFunc.SUM in seen and AggFunc.COUNT in seen

    def test_queries_are_executable(self, generator, tpch_ptable):
        from repro.engine.executor import execute_on_table

        for __ in range(20):
            query = generator.sample_query()
            execute_on_table(tpch_ptable.table, query)  # must not raise

    def test_constants_drawn_from_data(self, generator, tpch_ptable):
        """Range predicates should rarely be trivially empty."""
        from repro.engine.executor import execute_on_table

        nonempty = 0
        total = 30
        for __ in range(total):
            query = generator.sample_query()
            if execute_on_table(tpch_ptable.table, query):
                nonempty += 1
        assert nonempty >= total * 0.5


class TestSplit:
    def test_train_test_disjoint(self, generator):
        train, test = generator.train_test_split(20, 10)
        train_labels = {q.label() for q in train}
        test_labels = {q.label() for q in test}
        assert len(train_labels) == 20
        assert len(test_labels) == 10
        assert train_labels.isdisjoint(test_labels)

    def test_exclusion_respected(self, generator):
        first = generator.sample_queries(5)
        labels = {q.label() for q in first}
        second = generator.sample_queries(5, exclude=labels)
        assert labels.isdisjoint({q.label() for q in second})

    def test_determinism_per_seed(self, tpch_ptable, tpch_workload):
        a = QueryGenerator(tpch_workload, tpch_ptable.table, seed=5).sample_query()
        b = QueryGenerator(tpch_workload, tpch_ptable.table, seed=5).sample_query()
        assert a.label() == b.label()

    def test_impossible_dedup_raises(self, tpch_ptable):
        # A spec so narrow that distinct queries run out quickly.
        spec = WorkloadSpec(
            groupby_universe=(),
            aggregate_columns=("l_quantity",),
            predicate_columns=(),
            max_groupby_columns=0,
            max_predicate_clauses=0,
            max_aggregates=1,
        )
        generator = QueryGenerator(spec, tpch_ptable.table, seed=0)
        with pytest.raises(ConfigError, match="distinct"):
            generator.sample_queries(50)
