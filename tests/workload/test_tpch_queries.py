"""Unit tests for the TPC-H generalization templates."""

import numpy as np
import pytest

from repro.engine.executor import execute_on_table
from repro.workload.tpch_queries import TEMPLATES, get_template


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestTemplates:
    def test_ten_paper_templates_present(self):
        names = {t.name for t in TEMPLATES}
        expected = {
            "Q1",
            "Q5",
            "Q6",
            "Q7",
            "Q8",
            "Q9",
            "Q12",
            "Q14",
            "Q17",
            "Q18",
            "Q19",
        }
        assert expected <= names

    def test_get_template(self):
        assert get_template("Q1").name == "Q1"
        with pytest.raises(KeyError):
            get_template("Q99")

    @pytest.mark.parametrize("template", TEMPLATES, ids=lambda t: t.name)
    def test_instantiates_and_executes(self, template, rng, tpch_ptable):
        query = template.instantiate(rng)
        execute_on_table(tpch_ptable.table, query)  # must not raise

    def test_variants_are_randomized(self, tpch_ptable):
        variants = get_template("Q6").variants(5, seed=1)
        labels = {q.label() for q in variants}
        assert len(labels) > 1

    def test_q19_exceeds_clustering_cutoff(self, rng):
        query = get_template("Q19").instantiate(rng)
        assert query.num_predicate_clauses() > 10

    def test_q1_groups_by_flag_and_status(self, rng):
        query = get_template("Q1").instantiate(rng)
        assert query.group_by == ("l_returnflag", "l_linestatus")
        assert len(query.aggregates) == 6

    def test_q6_has_no_group_by(self, rng):
        query = get_template("Q6").instantiate(rng)
        assert query.group_by == ()

    @pytest.mark.parametrize("name", ["Q1", "Q5", "Q6", "Q12"])
    def test_templates_return_rows_on_synthetic_data(self, name, tpch_ptable):
        """Templates constants should usually select a nonempty answer."""
        hits = 0
        for seed in range(5):
            query = get_template(name).variants(1, seed=seed)[0]
            if execute_on_table(tpch_ptable.table, query):
                hits += 1
        assert hits >= 3
